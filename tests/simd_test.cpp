// Unit and property tests for the SIMD substrate: batch arithmetic and
// masks vs scalar reference, streaming compaction, SoA blocks.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <numeric>
#include <vector>

#include "simd/batch.hpp"
#include "simd/compact.hpp"
#include "simd/soa.hpp"
#include "tests/support/rng.hpp"

namespace {

using tb::simd::batch;
using tb::simd::SoaBlock;

template <class T, int W>
void expect_lanes(const batch<T, W>& b, const std::vector<T>& expected) {
  ASSERT_EQ(expected.size(), static_cast<std::size_t>(W));
  for (int i = 0; i < W; ++i) {
    EXPECT_EQ(b[i], expected[static_cast<std::size_t>(i)]) << "lane " << i;
  }
}

TEST(Batch, BroadcastAndIota) {
  auto b = batch<std::int32_t, 8>::broadcast(7);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(b[i], 7);
  auto io = batch<std::int32_t, 8>::iota(3, 2);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(io[i], 3 + 2 * i);
}

TEST(Batch, LoadStoreRoundTrip) {
  alignas(64) std::int32_t src[8] = {1, -2, 3, -4, 5, -6, 7, -8};
  auto b = batch<std::int32_t, 8>::load(src);
  alignas(64) std::int32_t dst[8] = {};
  b.store(dst);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(dst[i], src[i]);
}

TEST(Batch, UnalignedLoad) {
  std::vector<std::int32_t> data(32);
  std::iota(data.begin(), data.end(), 0);
  auto b = batch<std::int32_t, 8>::loadu(data.data() + 3);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(b[i], 3 + i);
}

// Property: every arithmetic/bitwise op matches the scalar computation,
// for the lane types and widths the apps use.
template <class T, int W>
void arithmetic_matches_scalar(std::uint64_t salt) {
  auto rng = tbtest::golden_rng(salt);
  for (int round = 0; round < 50; ++round) {
    batch<T, W> a, b;
    for (int i = 0; i < W; ++i) {
      a.set(i, static_cast<T>(static_cast<std::int64_t>(rng() % 2000) - 1000));
      b.set(i, static_cast<T>(static_cast<std::int64_t>(rng() % 2000) - 1000));
    }
    const auto sum = a + b;
    const auto diff = a - b;
    const auto prod = a * b;
    const auto mn = batch<T, W>::min(a, b);
    const auto mx = batch<T, W>::max(a, b);
    for (int i = 0; i < W; ++i) {
      EXPECT_EQ(sum[i], static_cast<T>(a[i] + b[i]));
      EXPECT_EQ(diff[i], static_cast<T>(a[i] - b[i]));
      EXPECT_EQ(prod[i], static_cast<T>(a[i] * b[i]));
      EXPECT_EQ(mn[i], std::min(a[i], b[i]));
      EXPECT_EQ(mx[i], std::max(a[i], b[i]));
    }
  }
}

TEST(Batch, ArithmeticI32x8) { arithmetic_matches_scalar<std::int32_t, 8>(1); }
TEST(Batch, ArithmeticI32x4) { arithmetic_matches_scalar<std::int32_t, 4>(2); }
TEST(Batch, ArithmeticI64x4) { arithmetic_matches_scalar<std::int64_t, 4>(3); }
TEST(Batch, ArithmeticF32x8) { arithmetic_matches_scalar<float, 8>(4); }
TEST(Batch, ArithmeticI16x16) { arithmetic_matches_scalar<std::int16_t, 16>(5); }

template <class T, int W>
void masks_match_scalar(std::uint64_t salt) {
  auto rng = tbtest::golden_rng(salt);
  for (int round = 0; round < 100; ++round) {
    batch<T, W> a, b;
    for (int i = 0; i < W; ++i) {
      a.set(i, static_cast<T>(static_cast<std::int64_t>(rng() % 8) - 4));
      b.set(i, static_cast<T>(static_cast<std::int64_t>(rng() % 8) - 4));
    }
    std::uint32_t lt = 0, le = 0, gt = 0, ge = 0, eq = 0, ne = 0;
    for (int i = 0; i < W; ++i) {
      lt |= static_cast<std::uint32_t>(a[i] < b[i]) << i;
      le |= static_cast<std::uint32_t>(a[i] <= b[i]) << i;
      gt |= static_cast<std::uint32_t>(a[i] > b[i]) << i;
      ge |= static_cast<std::uint32_t>(a[i] >= b[i]) << i;
      eq |= static_cast<std::uint32_t>(a[i] == b[i]) << i;
      ne |= static_cast<std::uint32_t>(a[i] != b[i]) << i;
    }
    EXPECT_EQ(tb::simd::cmp_lt(a, b), lt);
    EXPECT_EQ(tb::simd::cmp_le(a, b), le);
    EXPECT_EQ(tb::simd::cmp_gt(a, b), gt);
    EXPECT_EQ(tb::simd::cmp_ge(a, b), ge);
    EXPECT_EQ(tb::simd::cmp_eq(a, b), eq);
    EXPECT_EQ(tb::simd::cmp_ne(a, b), ne);
  }
}

TEST(Batch, MasksI32x8) { masks_match_scalar<std::int32_t, 8>(11); }
TEST(Batch, MasksI64x4) { masks_match_scalar<std::int64_t, 4>(12); }
TEST(Batch, MasksF32x8) { masks_match_scalar<float, 8>(13); }
TEST(Batch, MasksU32x8) { masks_match_scalar<std::uint32_t, 8>(14); }
TEST(Batch, MasksI32x4) { masks_match_scalar<std::int32_t, 4>(15); }

TEST(Batch, Select) {
  auto a = batch<std::int32_t, 8>::iota(0);
  auto b = batch<std::int32_t, 8>::iota(100);
  auto sel = tb::simd::select(0b10101010u, a, b);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(sel[i], (i % 2 == 1) ? i : 100 + i);
}

TEST(Batch, GatherF32) {
  std::vector<float> table(64);
  for (std::size_t i = 0; i < table.size(); ++i) table[i] = static_cast<float>(i) * 1.5f;
  batch<std::int32_t, 8> idx;
  const int indices[8] = {5, 0, 63, 31, 7, 7, 12, 40};
  for (int i = 0; i < 8; ++i) idx.set(i, indices[i]);
  auto g = tb::simd::gather(table.data(), idx);
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(g[i], table[static_cast<std::size_t>(indices[i])]);
}

TEST(Batch, GatherI32) {
  std::vector<std::int32_t> table(128);
  std::iota(table.begin(), table.end(), -64);
  batch<std::int32_t, 8> idx = batch<std::int32_t, 8>::iota(3, 15);
  auto g = tb::simd::gather(table.data(), idx);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(g[i], table[static_cast<std::size_t>(3 + 15 * i)]);
}

TEST(Batch, Reductions) {
  auto v = batch<std::int32_t, 8>::iota(1);  // 1..8
  EXPECT_EQ(tb::simd::reduce_add(v), 36);
  EXPECT_EQ(tb::simd::reduce_min(v), 1);
  EXPECT_EQ(tb::simd::reduce_max(v), 8);
  EXPECT_EQ((tb::simd::reduce_add_masked<std::uint64_t>(0b00000101u, v)), 1u + 3u);
  EXPECT_EQ((tb::simd::reduce_add_as<std::uint64_t>(v)), 36u);
}

// ---- compaction ---------------------------------------------------------------

// Property: compact_store is stable, writes exactly popcount lanes, and
// preserves the selected values — for every possible 8-lane mask.
TEST(Compact, AllMasksI32x8) {
  auto v = batch<std::int32_t, 8>::iota(10);
  for (std::uint32_t mask = 0; mask < 256; ++mask) {
    std::int32_t dst[9];
    dst[8] = -999;  // canary beyond the W-slot slack
    const int n = tb::simd::compact_store(dst, mask, v);
    ASSERT_EQ(n, std::popcount(mask)) << "mask=" << mask;
    int k = 0;
    for (int i = 0; i < 8; ++i) {
      if ((mask >> i) & 1u) {
        EXPECT_EQ(dst[k], 10 + i) << "mask=" << mask << " pos=" << k;
        ++k;
      }
    }
    EXPECT_EQ(dst[8], -999);
  }
}

TEST(Compact, AllMasksU64x4) {
  batch<std::uint64_t, 4> v;
  for (int i = 0; i < 4; ++i) v.set(i, 0x1000000000000000ull + static_cast<std::uint64_t>(i));
  for (std::uint32_t mask = 0; mask < 16; ++mask) {
    std::uint64_t dst[4] = {};
    const int n = tb::simd::compact_store(dst, mask, v);
    ASSERT_EQ(n, std::popcount(mask));
    int k = 0;
    for (int i = 0; i < 4; ++i) {
      if ((mask >> i) & 1u) {
        EXPECT_EQ(dst[k], v[i]);
        ++k;
      }
    }
  }
}

TEST(Compact, AllMasksF32x8) {
  auto v = batch<float, 8>::iota(0.5f, 0.25f);
  for (std::uint32_t mask = 0; mask < 256; ++mask) {
    float dst[8] = {};
    const int n = tb::simd::compact_store(dst, mask, v);
    ASSERT_EQ(n, std::popcount(mask));
    int k = 0;
    for (int i = 0; i < 8; ++i) {
      if ((mask >> i) & 1u) {
        EXPECT_FLOAT_EQ(dst[k++], v[i]);
      }
    }
  }
}

// Scalar fallback path (lane type with no AVX2 specialization).
TEST(Compact, FallbackI16x8) {
  auto v = batch<std::int16_t, 8>::iota(static_cast<std::int16_t>(-3));
  for (std::uint32_t mask = 0; mask < 256; ++mask) {
    std::int16_t dst[8] = {};
    const int n = tb::simd::compact_store(dst, mask, v);
    ASSERT_EQ(n, std::popcount(mask));
    int k = 0;
    for (int i = 0; i < 8; ++i) {
      if ((mask >> i) & 1u) {
        EXPECT_EQ(dst[k++], v[i]);
      }
    }
  }
}

// Masks above the width must be ignored.
TEST(Compact, MaskClampedToWidth) {
  auto v = batch<std::int32_t, 4>::iota(0);
  std::int32_t dst[4] = {-1, -1, -1, -1};
  const int n = tb::simd::compact_store(dst, 0xFFFFFFFFu, v);
  EXPECT_EQ(n, 4);
}

// ---- compaction edge cases ------------------------------------------------------
//
// The all-mask property sweeps above subsume these numerically, but the
// boundary masks are the cases the kernels hit constantly (a step where no
// lane spawns / every lane spawns), so pin them down by name.

TEST(CompactEdge, AllDropMaskWritesNothingMeaningful) {
  // mask = 0: zero survivors.  The contract still allows a full-vector
  // store into the W-slot slack, but the returned count must be 0 for both
  // the AVX2 table path and the scalar fallback.
  const auto v32 = batch<std::int32_t, 8>::iota(100);
  std::int32_t dst32[8] = {};
  EXPECT_EQ(tb::simd::compact_store(dst32, 0u, v32), 0);

  batch<std::uint64_t, 4> v64;
  for (int i = 0; i < 4; ++i) v64.set(i, 7ull + static_cast<std::uint64_t>(i));
  std::uint64_t dst64[4] = {};
  EXPECT_EQ(tb::simd::compact_store(dst64, 0u, v64), 0);
}

TEST(CompactEdge, AllKeepMaskIsIdentityCopy) {
  const auto v = batch<std::int32_t, 8>::iota(-4);
  std::int32_t dst[8] = {};
  EXPECT_EQ(tb::simd::compact_store(dst, 0xFFu, v), 8);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(dst[i], v[i]) << "lane " << i;

  batch<std::uint64_t, 4> w;
  for (int i = 0; i < 4; ++i) w.set(i, 1ull << (60 - i));
  std::uint64_t dst64[4] = {};
  EXPECT_EQ(tb::simd::compact_store(dst64, 0xFu, w), 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(dst64[i], w[i]) << "lane " << i;
}

TEST(CompactEdge, SingleSurvivorLandsInSlotZero) {
  // Exactly one lane kept, from every position: the survivor must land at
  // dst[0] regardless of its source lane.
  const auto v = batch<std::int32_t, 8>::iota(50);
  for (int i = 0; i < 8; ++i) {
    std::int32_t dst[8] = {};
    EXPECT_EQ(tb::simd::compact_store(dst, 1u << i, v), 1) << "lane " << i;
    EXPECT_EQ(dst[0], 50 + i) << "lane " << i;
  }
}

// ---- SoaBlock -----------------------------------------------------------------

TEST(SoaBlock, PushRowRoundTrip) {
  SoaBlock<std::int32_t, float> blk;
  blk.set_level(3);
  blk.push_back(1, 1.5f);
  blk.push_back(2, 2.5f);
  ASSERT_EQ(blk.size(), 2u);
  EXPECT_EQ(blk.level(), 3);
  EXPECT_EQ(blk.row(0), (std::tuple<std::int32_t, float>{1, 1.5f}));
  EXPECT_EQ(blk.row(1), (std::tuple<std::int32_t, float>{2, 2.5f}));
}

TEST(SoaBlock, GrowthPreservesData) {
  SoaBlock<std::int32_t> blk;
  for (std::int32_t i = 0; i < 1000; ++i) blk.push_back(i);
  ASSERT_EQ(blk.size(), 1000u);
  for (std::int32_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(std::get<0>(blk.row(static_cast<std::size_t>(i))), i);
  }
}

TEST(SoaBlock, AppendCopy) {
  SoaBlock<std::int32_t> a, b;
  a.push_back(1);
  a.push_back(2);
  b.push_back(10);
  a.append(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(std::get<0>(a.row(2)), 10);
  EXPECT_EQ(b.size(), 1u);  // source untouched
}

TEST(SoaBlock, AppendMoveIntoEmptyStealsBuffer) {
  SoaBlock<std::int32_t> a, b;
  b.push_back(10);
  b.push_back(20);
  a.set_level(5);
  a.append(std::move(b));
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.level(), 5);  // level preserved on steal
  EXPECT_EQ(b.size(), 0u);
}

TEST(SoaBlock, MoveResetsSource) {
  SoaBlock<std::int32_t> a;
  a.push_back(1);
  SoaBlock<std::int32_t> b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.capacity(), 0u);
  a.push_back(7);  // moved-from block is reusable
  EXPECT_EQ(std::get<0>(a.row(0)), 7);
}

TEST(SoaBlock, TakeFromMovesTail) {
  SoaBlock<std::int32_t> src, dst;
  for (std::int32_t i = 0; i < 10; ++i) src.push_back(i);
  const std::size_t moved = dst.take_from(src, 4);
  EXPECT_EQ(moved, 4u);
  EXPECT_EQ(src.size(), 6u);
  ASSERT_EQ(dst.size(), 4u);
  // The tail 6,7,8,9 moved over.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(std::get<0>(dst.row(static_cast<std::size_t>(i))), 6 + i);
}

TEST(SoaBlock, TakeFromClampsToAvailable) {
  SoaBlock<std::int32_t> src, dst;
  src.push_back(1);
  EXPECT_EQ(dst.take_from(src, 100), 1u);
  EXPECT_TRUE(src.empty());
}

TEST(SoaBlock, AppendCompactMultiColumn) {
  SoaBlock<std::int32_t, std::int32_t> blk;
  auto a = batch<std::int32_t, 8>::iota(0);
  auto b = batch<std::int32_t, 8>::iota(100);
  blk.append_compact<8>(0b11001001u, a, b);
  ASSERT_EQ(blk.size(), 4u);
  const int kept[4] = {0, 3, 6, 7};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(blk.row(static_cast<std::size_t>(i)),
              (std::tuple<std::int32_t, std::int32_t>{kept[i], 100 + kept[i]}));
  }
}

TEST(SoaBlock, AppendCompactZeroMaskIsNoop) {
  SoaBlock<std::int32_t> blk;
  blk.append_compact<8>(0u, batch<std::int32_t, 8>::iota(0));
  EXPECT_TRUE(blk.empty());
}

// Property: a long randomized sequence of push/append_compact calls keeps
// columns consistent with a scalar model.
TEST(SoaBlock, RandomizedAgainstModel) {
  auto rng = tbtest::golden_rng(99);
  SoaBlock<std::int32_t, std::int32_t> blk;
  std::vector<std::pair<std::int32_t, std::int32_t>> model;
  for (int round = 0; round < 500; ++round) {
    if (rng.below(2) == 0) {
      const auto x = static_cast<std::int32_t>(rng.below(1000));
      blk.push_back(x, x * 2);
      model.emplace_back(x, x * 2);
    } else {
      batch<std::int32_t, 8> a, b;
      for (int i = 0; i < 8; ++i) {
        const auto x = static_cast<std::int32_t>(rng.below(1000));
        a.set(i, x);
        b.set(i, x + 1);
      }
      const std::uint32_t mask = rng.below(256);
      blk.append_compact<8>(mask, a, b);
      for (int i = 0; i < 8; ++i) {
        if ((mask >> i) & 1u) model.emplace_back(a[i], b[i]);
      }
    }
  }
  ASSERT_EQ(blk.size(), model.size());
  for (std::size_t i = 0; i < model.size(); ++i) {
    EXPECT_EQ(blk.row(i),
              (std::tuple<std::int32_t, std::int32_t>{model[i].first, model[i].second}));
  }
}

TEST(NaturalWidth, MatchesIsa) {
#if TB_HAVE_AVX2
  EXPECT_EQ(tb::simd::natural_width<std::int32_t>, 8);
  EXPECT_EQ(tb::simd::natural_width<std::uint64_t>, 4);
  EXPECT_EQ(tb::simd::natural_width<std::int16_t>, 16);
#else
  EXPECT_EQ(tb::simd::natural_width<std::int32_t>, 4);
#endif
}

}  // namespace
