// Tests for the join-frame scheduler (core/join_scheduler.hpp): value
// propagation through internal nodes under all three policies and arbitrary
// block sizes, frame recycling, dying branches, multi-root runs, and the
// true-minimax application it unlocks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "apps/fib.hpp"
#include "apps/minmax_join.hpp"
#include "core/driver.hpp"
#include "core/join_scheduler.hpp"
#include "tests/support/harness.hpp"

namespace {

using namespace tb;
using core::SeqPolicy;
using core::Thresholds;
using tbtest::for_each_policy;

// ---- a sum-join program (fib) -------------------------------------------------------
// Joining with + must reproduce the leaf-only reduction exactly — the
// baseline sanity check that frames neither drop nor duplicate values.
struct FibJoin {
  struct Task {
    std::int32_t n;
  };
  using Value = std::uint64_t;
  static constexpr int max_children = 2;

  bool is_base(const Task& t) const { return t.n < 2; }
  Value leaf_value(const Task& t) const { return static_cast<Value>(t.n); }
  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    emit(0, Task{t.n - 1});
    emit(1, Task{t.n - 2});
  }
  Value join_identity(const Task&) const { return 0; }
  void combine(const Task&, Value& acc, const Value& v) const { acc += v; }
  Value finalize(const Task&, const Value& acc) const { return acc; }
};
static_assert(core::JoinTaskProgram<FibJoin>);

// ---- a max-depth program ------------------------------------------------------------
// finalize() adds the node's own edge, so the result is the tree height —
// checks that finalize runs per frame, not just at the root.
struct DepthJoin {
  struct Task {
    std::int32_t n;
  };
  using Value = std::int32_t;
  static constexpr int max_children = 2;

  bool is_base(const Task& t) const { return t.n < 2; }
  Value leaf_value(const Task&) const { return 0; }
  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    emit(0, Task{t.n - 1});
    emit(1, Task{t.n - 2});
  }
  Value join_identity(const Task&) const { return 0; }
  void combine(const Task&, Value& acc, const Value& v) const { acc = std::max(acc, v); }
  Value finalize(const Task&, const Value& acc) const { return acc + 1; }
};

// ---- a dying-branch program ----------------------------------------------------------
struct DyingJoin {
  struct Task {
    std::int32_t depth;
  };
  using Value = std::int32_t;
  static constexpr int max_children = 2;
  int die_at = 4;

  bool is_base(const Task&) const { return false; }
  Value leaf_value(const Task&) const { return 99; }  // never reached
  template <class Emit>
  void expand(const Task& t, Emit&& emit) const {
    if (t.depth + 1 >= die_at) return;  // expands to nothing
    emit(0, Task{t.depth + 1});
    emit(1, Task{t.depth + 1});
  }
  Value join_identity(const Task&) const { return 0; }
  void combine(const Task&, Value& acc, const Value& v) const { acc += v; }
  Value finalize(const Task&, const Value& acc) const { return acc + 1; }  // count nodes
};

class JoinSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(JoinSweep, SumJoinReproducesFib) {
  const std::size_t block = GetParam();
  const FibJoin prog;
  for_each_policy([&](SeqPolicy pol) {
    const auto th = Thresholds::for_block_size(8, block, std::max<std::size_t>(block / 4, 1));
    EXPECT_EQ(core::run_join(prog, FibJoin::Task{24}, pol, th), apps::fib_sequential(24));
  });
}

TEST_P(JoinSweep, MaxDepthJoinMeasuresHeight) {
  const std::size_t block = GetParam();
  const DepthJoin prog;
  // Height of the fib(n) call tree is n-1 edges for n >= 2 (leftmost chain),
  // so finalize-per-level yields n-1 on the root for leaves at value 0.
  const auto th = Thresholds::for_block_size(8, block);
  EXPECT_EQ(core::run_join(prog, DepthJoin::Task{20}, SeqPolicy::Restart, th), 19);
}

INSTANTIATE_TEST_SUITE_P(Blocks, JoinSweep, ::testing::Values(1u, 8u, 64u, 1024u),
                         [](const auto& info) {
                           return "block" + std::to_string(info.param);
                         });

TEST(Join, DyingBranchesCompleteTheirFrames) {
  const DyingJoin prog;
  // Perfect binary tree of depth 4 where every frontier node expands to
  // nothing: each node contributes finalize's +1, so the value is the node
  // count 2^4 - 1.
  for_each_policy([&](SeqPolicy pol) {
    const auto th = Thresholds::for_block_size(8, 16, 4);
    EXPECT_EQ(core::run_join(prog, DyingJoin::Task{0}, pol, th), 15);
  });
}

TEST(Join, MultipleRootsKeepSeparateResults) {
  const FibJoin prog;
  std::vector<FibJoin::Task> roots;
  for (int n = 0; n < 16; ++n) roots.push_back({n});
  core::JoinScheduler<FibJoin> sched(prog, Thresholds::for_block_size(8, 32, 8),
                                     SeqPolicy::Restart);
  const auto values = sched.run(roots);
  ASSERT_EQ(values.size(), roots.size());
  for (int n = 0; n < 16; ++n) {
    EXPECT_EQ(values[static_cast<std::size_t>(n)], apps::fib_sequential(n)) << "root " << n;
  }
}

TEST(Join, FrameArenaIsRecycled) {
  const FibJoin prog;
  core::ExecStats st;
  const auto th = Thresholds::for_block_size(8, 64, 8);
  (void)core::run_join(prog, FibJoin::Task{22}, SeqPolicy::Restart, th, &st);
  const auto info = core::count_tree(
      apps::FibProgram{}, std::vector{apps::FibProgram::root(22)});
  EXPECT_EQ(st.tasks_executed, info.tasks);
  EXPECT_EQ(st.leaves, info.leaves);
  // Far fewer frames live at once than internal nodes in total.
  EXPECT_GT(st.peak_frames, 0u);
  EXPECT_LT(st.peak_frames, (info.tasks - info.leaves) / 4);
}

TEST(Join, StatsMatchLeafOnlySchedulerSchedule) {
  // The join machinery must not change the *schedule*: block sizes, steps,
  // and utilization equal the leaf-only scheduler's on the same tree.
  const FibJoin jprog;
  const apps::FibProgram prog;
  const auto th = Thresholds::for_block_size(8, 128, 16);
  core::ExecStats js, ls;
  (void)core::run_join(jprog, FibJoin::Task{22}, SeqPolicy::Restart, th, &js);
  const std::vector roots{apps::FibProgram::root(22)};
  (void)core::run_seq<core::AosExec<apps::FibProgram>>(prog, roots, SeqPolicy::Restart, th,
                                                       &ls);
  EXPECT_EQ(js.steps_total, ls.steps_total);
  EXPECT_EQ(js.supersteps, ls.supersteps);
  EXPECT_EQ(js.tasks_executed, ls.tasks_executed);
}

// ---- true minimax ---------------------------------------------------------------------

class TrueMinmax : public ::testing::TestWithParam<int> {};

TEST_P(TrueMinmax, BlockedJoinMatchesRecursiveMinimax) {
  const int ply = GetParam();
  apps::MinmaxJoinProgram prog;
  prog.inner.ply_limit = ply;
  const auto root = apps::MinmaxJoinProgram::root();
  const auto expected = apps::minmax_join_sequential(prog, root);
  for_each_policy([&](SeqPolicy pol) {
    for (const std::size_t block : {16u, 256u}) {
      const auto th = Thresholds::for_block_size(8, block, std::max<std::size_t>(block / 4, 1));
      EXPECT_EQ(core::run_join(prog, root, pol, th), expected) << "block " << block;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Plies, TrueMinmax, ::testing::Values(4, 5, 6),
                         [](const auto& info) {
                           return "ply" + std::to_string(info.param);
                         });

TEST(TrueMinmaxDetail, MidGamePositionsPropagateMinAndMax) {
  apps::MinmaxJoinProgram prog;
  prog.inner.ply_limit = 16;  // play to the end from shallow positions
  // X one move from completing the first row, X to move: value +1.
  {
    apps::MinmaxJoinProgram::Task t{0x7u, 0x30u << 6};  // X has 3 of row 0
    // popcount(x|o) even => X to move; here 3 + 2 = 5 stones, O to move —
    // give O a harmless extra stone to flip the turn.
    t.o |= 1u << 15;
    ASSERT_TRUE(apps::MinmaxJoinProgram::x_to_move(t));
    const auto th = Thresholds::for_block_size(8, 64, 8);
    EXPECT_EQ(core::run_join(prog, t, core::SeqPolicy::Restart, th),
              apps::minmax_join_sequential(prog, t));
    EXPECT_EQ(core::run_join(prog, t, core::SeqPolicy::Restart, th), 1);
  }
}

}  // namespace
