// The bench/support/ reporter library: strict JSON writer/parser, the
// Result schema round trip, Flags edge cases, geomean corners, and the
// bench_diff join/delta logic (tools/bench_diff.cpp is a thin shell around
// tbench::diff_results).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/support/diff.hpp"
#include "bench/support/flags.hpp"
#include "bench/support/json.hpp"
#include "bench/support/report.hpp"
#include "bench/support/timing.hpp"

// This TU builds json::Object literals inline; see the GCC 12
// -Warray-bounds note in bench/support/json.hpp.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif

namespace {

using tbench::Flags;
using tbench::Result;
namespace json = tbench::json;

Flags make_flags(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(const_cast<const char**>(args.data())));
}

// ---- Flags ------------------------------------------------------------------------

TEST(Flags, KeyValueAndBareFlag) {
  const auto f = make_flags({"--scale=paper", "--csv-only"});
  EXPECT_EQ(f.get("scale"), "paper");
  EXPECT_TRUE(f.has("csv-only"));
  EXPECT_EQ(f.get("csv-only"), "1");
  EXPECT_FALSE(f.has("absent"));
  EXPECT_EQ(f.get("absent", "fallback"), "fallback");
}

TEST(Flags, RepeatedKeyLastWins) {
  // Wrapper scripts append overrides to a fixed base command line.
  const auto f = make_flags({"--scale=test", "--workers=2", "--scale=paper"});
  EXPECT_EQ(f.get("scale"), "paper");
  EXPECT_EQ(f.get_int("workers", 0), 2);
}

TEST(Flags, NonNumericValuesFallBackToDefault) {
  const auto f = make_flags({"--workers=lots", "--threshold=10%", "--reps=3"});
  EXPECT_EQ(f.get_int("workers", 4), 4);
  EXPECT_EQ(f.get_double("threshold", 10.0), 10.0);  // trailing junk rejected
  EXPECT_EQ(f.get_int("reps", 1), 3);
}

TEST(Flags, EmptyValueBehavesLikeAbsent) {
  const auto f = make_flags({"--out="});
  EXPECT_FALSE(f.has("out"));
  EXPECT_EQ(f.get_int("out", 7), 7);
}

TEST(Flags, PositionalArgumentsCollectInOrder) {
  const auto f = make_flags({"base.json", "--threshold=5", "next.json"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "base.json");
  EXPECT_EQ(f.positional()[1], "next.json");
  EXPECT_EQ(f.get_double("threshold", 0), 5.0);
}

// ---- geomean ----------------------------------------------------------------------

TEST(Geomean, EmptyIsZero) { EXPECT_EQ(tbench::geomean({}), 0.0); }

TEST(Geomean, SingletonIsTheValue) {
  EXPECT_NEAR(tbench::geomean({3.5}), 3.5, 1e-12);
}

TEST(Geomean, PairIsSqrtOfProduct) {
  EXPECT_NEAR(tbench::geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Geomean, ZerosAreClampedNotFatal) {
  EXPECT_GT(tbench::geomean({0.0, 1.0}), 0.0);
}

// ---- JSON writer ------------------------------------------------------------------

TEST(Json, EscapesControlAndSpecialCharacters) {
  std::string s;
  json::escape_into(s, "a\"b\\c\nd\te\x01"
                       "f");
  EXPECT_EQ(s, "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(json::Value(std::nan("")).dump(), "null");
  EXPECT_EQ(json::Value(1.0 / 0.0 * 1.0).dump(), "null");
}

TEST(Json, IntegralNumbersPrintAsIntegers) {
  EXPECT_EQ(json::Value(3.0).dump(), "3");
  EXPECT_EQ(json::Value(-17).dump(), "-17");
}

TEST(Json, ObjectsKeepInsertionOrder) {
  json::Object o;
  o.emplace_back("z", 1);
  o.emplace_back("a", 2);
  EXPECT_EQ(json::Value(std::move(o)).dump(), "{\"z\":1,\"a\":2}");
}

// ---- JSON parser ------------------------------------------------------------------

TEST(Json, ParsesNestedDocument) {
  const auto v = json::Value::parse(R"(  {"a": [1, 2.5, {"b": null}], "c": false} )");
  ASSERT_TRUE(v.is_object());
  const auto& a = v.find("a")->as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].as_double(), 1.0);
  EXPECT_EQ(a[1].as_double(), 2.5);
  EXPECT_TRUE(a[2].find("b")->is_null());
  EXPECT_FALSE(v.find("c")->as_bool());
}

TEST(Json, StringEscapeRoundTrip) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t bell\x07 del\x7f";
  std::string dumped;
  json::escape_into(dumped, nasty);
  EXPECT_EQ(json::Value::parse(dumped).as_string(), nasty);
}

TEST(Json, UnicodeEscapes) {
  EXPECT_EQ(json::Value::parse(R"("A")").as_string(), "A");
  // Surrogate pair: U+1F600 as 4-byte UTF-8.
  EXPECT_EQ(json::Value::parse(R"("😀")").as_string(), "\xF0\x9F\x98\x80");
  EXPECT_THROW(json::Value::parse(R"("\uD83D")"), std::runtime_error);
  EXPECT_THROW(json::Value::parse(R"("\uDE00")"), std::runtime_error);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::Value::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(json::Value::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(json::Value::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json::Value::parse("\"raw\ncontrol\""), std::runtime_error);
  EXPECT_THROW(json::Value::parse("\"bad\\escape\""), std::runtime_error);
  EXPECT_THROW(json::Value::parse("01a"), std::runtime_error);
  EXPECT_THROW(json::Value::parse(""), std::runtime_error);
  EXPECT_THROW(json::Value::parse(std::string(100, '[') + std::string(100, ']')),
               std::runtime_error);
}

TEST(Json, NumberRoundTripIsExact) {
  for (const double d : {0.1234567890123456, 1e-9, 6.02e23, -2.5}) {
    EXPECT_EQ(json::Value::parse(json::Value(d).dump()).as_double(), d);
  }
}

TEST(Json, TypeMismatchThrows) {
  const auto v = json::Value::parse("[1]");
  EXPECT_THROW((void)v.as_object(), std::runtime_error);
  EXPECT_THROW((void)v.as_string(), std::runtime_error);
  EXPECT_EQ(v.find("x"), nullptr);  // not an object: lookup misses, no throw
}

// ---- Result schema round trip -----------------------------------------------------

Result sample_result() {
  Result r;
  r.benchmark = "fib";
  r.variant = "blocked";
  r.policy = "restart";
  r.layer = "simd";
  r.workers = 4;
  r.scale = "test";
  r.reps = 3;
  r.seconds_best = 0.125;
  r.seconds_all = {0.25, 0.125, 0.5};
  r.digest = "28657";
  return r;
}

TEST(ResultSchema, WriteParseIdentical) {
  const Result r = sample_result();
  const Result back = tbench::result_from_json(
      tbench::json::Value::parse(tbench::to_json(r).dump(2)));
  EXPECT_EQ(back, r);
}

TEST(ResultSchema, MissingFieldThrows) {
  auto v = tbench::to_json(sample_result());
  json::Object o = v.as_object();
  o.erase(o.begin());  // drop "benchmark"
  EXPECT_THROW(tbench::result_from_json(json::Value(std::move(o))), std::runtime_error);
}

TEST(ResultSchema, KeyIsIdentityNotMeasurement) {
  Result a = sample_result(), b = sample_result();
  b.seconds_best = 99.0;
  b.seconds_all = {99.0};
  EXPECT_EQ(a.key(), b.key());
  b.workers = 8;
  EXPECT_NE(a.key(), b.key());
}

TEST(ResultSchema, UnitDirections) {
  Result r = sample_result();
  EXPECT_TRUE(r.lower_is_better());
  r.unit = "steps";
  EXPECT_TRUE(r.lower_is_better());
  r.unit = "utilization";
  EXPECT_FALSE(r.lower_is_better());
  r.unit = "ratio";
  EXPECT_FALSE(r.lower_is_better());
}

TEST(ResultSchema, ReporterDocumentRoundTrip) {
  const auto flags = make_flags({"--scale=test", "--format=json"});
  tbench::Reporter rep("bench_report_test", flags);
  EXPECT_TRUE(rep.json_enabled());
  rep.add_timed(rep.make("fib", "seq"), 2, [] {});
  rep.add_metric(rep.make("fib", "block=32", "restart", "soa"), "utilization", 0.75);
  const auto doc = tbench::document_from_json(
      tbench::json::Value::parse(rep.document().dump(2)));
  EXPECT_EQ(doc.driver, "bench_report_test");
  EXPECT_EQ(doc.scale, "test");
  ASSERT_EQ(doc.records.size(), 2u);
  EXPECT_EQ(doc.records, rep.records());
  EXPECT_EQ(doc.records[1].unit, "utilization");
  EXPECT_EQ(doc.records[1].seconds_best, 0.75);
}

TEST(ResultSchema, SetLastDigestPatchesMostRecentRecord) {
  tbench::Reporter rep("t", make_flags({}));
  rep.set_last_digest("noop on empty");  // must not crash
  rep.add_timed(rep.make("a", "v"), 1, [] {});
  rep.add_timed(rep.make("b", "v"), 1, [] {});
  rep.set_last_digest("42");
  ASSERT_EQ(rep.records().size(), 2u);
  EXPECT_EQ(rep.records()[0].digest, "");
  EXPECT_EQ(rep.records()[1].digest, "42");
}

TEST(ResultSchema, NewerSchemaVersionRejected) {
  json::Object doc;
  doc.emplace_back("schema", tbench::kResultSchema);
  doc.emplace_back("schema_version", tbench::kResultSchemaVersion + 1);
  doc.emplace_back("driver", "future");
  doc.emplace_back("records", json::Array{});
  EXPECT_THROW(tbench::document_from_json(json::Value(std::move(doc))),
               std::runtime_error);
}

// ---- diff logic -------------------------------------------------------------------

Result rec(const std::string& bench, double value, const std::string& unit = "seconds") {
  Result r;
  r.benchmark = bench;
  r.variant = "v";
  r.policy = "-";
  r.layer = "-";
  r.scale = "test";
  r.seconds_best = value;
  r.seconds_all = {value};
  r.unit = unit;
  return r;
}

TEST(Diff, SelfDiffIsZeroDelta) {
  const std::vector<Result> base = {rec("a", 1.0), rec("b", 2.0)};
  const auto d = tbench::diff_results(base, base, 10.0);
  EXPECT_EQ(d.regressions, 0);
  EXPECT_EQ(d.matched.size(), 2u);
  EXPECT_NEAR(d.geomean_ratio, 1.0, 1e-12);
  EXPECT_TRUE(d.only_base.empty());
  EXPECT_TRUE(d.only_next.empty());
}

TEST(Diff, RegressionBeyondThresholdFlagged) {
  const auto d = tbench::diff_results({rec("a", 1.0)}, {rec("a", 1.2)}, 10.0);
  ASSERT_EQ(d.matched.size(), 1u);
  EXPECT_TRUE(d.matched[0].regressed);
  EXPECT_NEAR(d.matched[0].delta_pct, 20.0, 1e-9);
  EXPECT_EQ(d.regressions, 1);
}

TEST(Diff, ImprovementAndWithinThresholdPass) {
  const auto d =
      tbench::diff_results({rec("a", 1.0), rec("b", 1.0)}, {rec("a", 0.5), rec("b", 1.05)},
                           10.0);
  EXPECT_EQ(d.regressions, 0);
}

TEST(Diff, HigherIsBetterUnitsNormalize) {
  // Utilization dropping 0.9 -> 0.7 is a ~28.6% regression, not an improvement.
  const auto d = tbench::diff_results({rec("a", 0.9, "utilization")},
                                      {rec("a", 0.7, "utilization")}, 10.0);
  ASSERT_EQ(d.matched.size(), 1u);
  EXPECT_TRUE(d.matched[0].regressed);
  EXPECT_GT(d.matched[0].delta_pct, 20.0);
  // And rising utilization is an improvement.
  const auto up = tbench::diff_results({rec("a", 0.7, "utilization")},
                                       {rec("a", 0.9, "utilization")}, 10.0);
  EXPECT_EQ(up.regressions, 0);
  EXPECT_LT(up.matched[0].ratio, 1.0);
}

TEST(Diff, MissingAndNewRecordsReported) {
  const auto d = tbench::diff_results({rec("a", 1.0), rec("gone", 1.0)},
                                      {rec("a", 1.0), rec("new", 1.0)}, 10.0);
  ASSERT_EQ(d.only_base.size(), 1u);
  EXPECT_EQ(d.only_base[0].benchmark, "gone");
  ASSERT_EQ(d.only_next.size(), 1u);
  EXPECT_EQ(d.only_next[0].benchmark, "new");
  EXPECT_EQ(d.regressions, 0);
}

TEST(Diff, UnitsFilterRestrictsComparison) {
  const std::vector<Result> base = {rec("a", 1.0), rec("u", 0.9, "utilization")};
  const std::vector<Result> next = {rec("a", 99.0), rec("u", 0.9, "utilization")};
  const auto d = tbench::diff_results(base, next, 10.0, "utilization");
  EXPECT_EQ(d.matched.size(), 1u);  // the seconds regression is filtered out
  EXPECT_EQ(d.regressions, 0);
}

TEST(Diff, DigestMismatchDetected) {
  auto a = rec("a", 1.0);
  a.digest = "x";
  auto b = rec("a", 1.0);
  b.digest = "y";
  const auto d = tbench::diff_results({a}, {b}, 10.0);
  EXPECT_EQ(d.digest_mismatches, 1);
  ASSERT_EQ(d.matched.size(), 1u);
  EXPECT_TRUE(d.matched[0].digest_mismatch);
}

TEST(Diff, SortedWorstFirst) {
  const auto d = tbench::diff_results({rec("a", 1.0), rec("b", 1.0), rec("c", 1.0)},
                                      {rec("a", 1.1), rec("b", 2.0), rec("c", 0.4)}, 50.0);
  ASSERT_EQ(d.matched.size(), 3u);
  EXPECT_EQ(d.matched[0].base.benchmark, "b");
  EXPECT_EQ(d.matched[2].base.benchmark, "c");
}

}  // namespace
