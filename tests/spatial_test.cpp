// Tests for the spatial substrate (octree, kd-tree, generators) and the
// three tree-traversal benchmarks (Barnes-Hut, point correlation, k-NN),
// checked against brute-force oracles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "apps/barneshut.hpp"
#include "apps/knn.hpp"
#include "apps/pointcorr.hpp"
#include "core/driver.hpp"
#include "spatial/bodies.hpp"
#include "spatial/kdtree.hpp"
#include "spatial/octree.hpp"
#include "tests/support/harness.hpp"

namespace {

using namespace tb;
using core::SeqPolicy;
using core::Thresholds;
using tbtest::for_each_policy;

// ---- generators ---------------------------------------------------------------

TEST(Bodies, UniformCubeInRange) {
  const auto b = spatial::Bodies::uniform_cube(500, 3);
  ASSERT_EQ(b.size(), 500u);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_GE(b.x[i], -1.0f);
    EXPECT_LE(b.x[i], 1.0f);
    EXPECT_GT(b.mass[i], 0.0f);
  }
}

TEST(Bodies, PlummerIsClusteredAndTruncated) {
  const auto b = spatial::Bodies::plummer(2000, 5);
  double mean_r = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double r = std::sqrt(static_cast<double>(b.x[i]) * b.x[i] +
                               static_cast<double>(b.y[i]) * b.y[i] +
                               static_cast<double>(b.z[i]) * b.z[i]);
    EXPECT_LE(r, 16.001);
    mean_r += r;
  }
  mean_r /= static_cast<double>(b.size());
  // Plummer half-mass radius ≈ 1.3; the truncated mean stays small.
  EXPECT_LT(mean_r, 4.0);
  EXPECT_GT(mean_r, 0.5);
}

TEST(Bodies, GeneratorsAreDeterministic) {
  const auto a = spatial::Bodies::plummer(100, 9);
  const auto b = spatial::Bodies::plummer(100, 9);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.x[i], b.x[i]);
}

// ---- octree --------------------------------------------------------------------

TEST(Octree, EveryBodyInExactlyOneLeaf) {
  const auto b = spatial::Bodies::uniform_cube(777, 4);
  const auto t = spatial::Octree::build(b, 8);
  std::vector<int> seen(b.size(), 0);
  for (int n = 0; n < t.num_nodes(); ++n) {
    if (!t.is_leaf(n)) continue;
    for (std::int32_t j = t.leaf_begin[static_cast<std::size_t>(n)];
         j < t.leaf_end[static_cast<std::size_t>(n)]; ++j) {
      seen[static_cast<std::size_t>(t.body_index[static_cast<std::size_t>(j)])] += 1;
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], 1) << "body " << i;
}

TEST(Octree, RootAggregatesTotalMass) {
  const auto b = spatial::Bodies::uniform_cube(1000, 5);
  const auto t = spatial::Octree::build(b, 4);
  float total = 0;
  for (std::size_t i = 0; i < b.size(); ++i) total += b.mass[i];
  EXPECT_NEAR(t.mass[static_cast<std::size_t>(t.root)], total, 1e-3f);
}

TEST(Octree, ChildCellsHalveTheWidth) {
  const auto b = spatial::Bodies::uniform_cube(512, 6);
  const auto t = spatial::Octree::build(b, 4);
  for (int n = 0; n < t.num_nodes(); ++n) {
    for (const auto c : t.children[static_cast<std::size_t>(n)]) {
      if (c != spatial::Octree::kNoChild) {
        EXPECT_FLOAT_EQ(t.half[static_cast<std::size_t>(c)],
                        t.half[static_cast<std::size_t>(n)] * 0.5f);
      }
    }
  }
}

TEST(Octree, SingleBodyTree) {
  spatial::Bodies b;
  b.resize(1);
  b.x[0] = b.y[0] = b.z[0] = 0.25f;
  b.mass[0] = 2.0f;
  const auto t = spatial::Octree::build(b, 8);
  EXPECT_TRUE(t.is_leaf(t.root));
  EXPECT_FLOAT_EQ(t.mass[static_cast<std::size_t>(t.root)], 2.0f);
}

// ---- kd-tree -------------------------------------------------------------------

TEST(KdTree, LeavesPartitionThePoints) {
  const auto p = spatial::Bodies::uniform_cube(900, 8);
  const auto t = spatial::KdTree::build(p, 16);
  std::vector<int> seen(p.size(), 0);
  for (int n = 0; n < t.num_nodes(); ++n) {
    if (!t.is_leaf(n)) continue;
    for (std::int32_t j = t.leaf_begin[static_cast<std::size_t>(n)];
         j < t.leaf_end[static_cast<std::size_t>(n)]; ++j) {
      seen[static_cast<std::size_t>(t.point_index[static_cast<std::size_t>(j)])] += 1;
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], 1);
}

TEST(KdTree, BoundingBoxesContainTheirPoints) {
  const auto p = spatial::Bodies::uniform_cube(300, 9);
  const auto t = spatial::KdTree::build(p, 8);
  for (int n = 0; n < t.num_nodes(); ++n) {
    if (!t.is_leaf(n)) continue;
    const auto i = static_cast<std::size_t>(n);
    for (std::int32_t j = t.leaf_begin[i]; j < t.leaf_end[i]; ++j) {
      const auto jj = static_cast<std::size_t>(j);
      EXPECT_GE(t.px[jj], t.min_x[i]);
      EXPECT_LE(t.px[jj], t.max_x[i]);
      EXPECT_GE(t.py[jj], t.min_y[i]);
      EXPECT_LE(t.py[jj], t.max_y[i]);
      EXPECT_GE(t.pz[jj], t.min_z[i]);
      EXPECT_LE(t.pz[jj], t.max_z[i]);
    }
  }
}

TEST(KdTree, BoxDistZeroInsideBox) {
  const auto p = spatial::Bodies::uniform_cube(100, 10);
  const auto t = spatial::KdTree::build(p, 8);
  EXPECT_FLOAT_EQ(t.box_dist2(t.root, 0.0f, 0.0f, 0.0f), 0.0f);
  // A faraway point has a positive distance to the root box.
  EXPECT_GT(t.box_dist2(t.root, 100.0f, 0.0f, 0.0f), 0.0f);
}

// ---- point correlation -----------------------------------------------------------

TEST(PointCorr, MatchesBruteForce) {
  const auto p = spatial::Bodies::uniform_cube(600, 11);
  const auto t = spatial::KdTree::build(p, 16);
  apps::PointCorrProgram prog{&p, &t, 0.05f};
  EXPECT_EQ(apps::pointcorr_sequential(prog), apps::pointcorr_bruteforce(p, 0.05f));
}

TEST(PointCorr, AllSchedulerVariantsMatchBruteForce) {
  const auto p = spatial::Bodies::uniform_cube(400, 12);
  const auto t = spatial::KdTree::build(p, 8);
  apps::PointCorrProgram prog{&p, &t, 0.08f};
  const auto roots = prog.roots();
  const std::uint64_t expected = apps::pointcorr_bruteforce(p, 0.08f);
  tbtest::expect_seq_matrix(prog, roots, Thresholds{8, 256, 128, 32}, expected);
}

TEST(PointCorr, ParallelSchedulersMatch) {
  rt::ForkJoinPool pool(4);
  const auto p = spatial::Bodies::plummer(500, 13);
  const auto t = spatial::KdTree::build(p, 16);
  apps::PointCorrProgram prog{&p, &t, 0.2f};
  const auto roots = prog.roots();
  const std::uint64_t expected = apps::pointcorr_bruteforce(p, 0.2f);
  const Thresholds th{8, 256, 128, 32};
  EXPECT_EQ(core::run_par_reexp<core::SimdExec<apps::PointCorrProgram>>(pool, prog, roots, th),
            expected);
  EXPECT_EQ(core::run_par_restart<core::SimdExec<apps::PointCorrProgram>>(pool, prog, roots, th),
            expected);
  EXPECT_EQ(apps::pointcorr_cilk(pool, prog), expected);
}

// ---- Barnes-Hut -----------------------------------------------------------------

// Brute-force O(n^2) forces with the same softening.
void brute_forces(const spatial::Bodies& b, float eps2, std::vector<float>& fx,
                  std::vector<float>& fy, std::vector<float>& fz) {
  const std::size_t n = b.size();
  fx.assign(n, 0);
  fy.assign(n, 0);
  fz.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const float dx = b.x[j] - b.x[i];
      const float dy = b.y[j] - b.y[i];
      const float dz = b.z[j] - b.z[i];
      const float r2 = dx * dx + dy * dy + dz * dz + eps2;
      const float inv = 1.0f / std::sqrt(r2);
      const float f = b.mass[j] * inv * inv * inv;
      fx[i] += f * dx;
      fy[i] += f * dy;
      fz[i] += f * dz;
    }
  }
}

struct BhSetup {
  spatial::Bodies bodies;
  spatial::Octree tree;
  std::vector<float> ax, ay, az;
  apps::BarnesHutProgram prog;

  explicit BhSetup(std::size_t n, std::uint64_t seed)
      : bodies(spatial::Bodies::plummer(n, seed)),
        tree(spatial::Octree::build(bodies, 8)),
        ax(n, 0),
        ay(n, 0),
        az(n, 0),
        prog{&bodies, &tree, ax.data(), ay.data(), az.data()} {}

  void reset() {
    std::fill(ax.begin(), ax.end(), 0.0f);
    std::fill(ay.begin(), ay.end(), 0.0f);
    std::fill(az.begin(), az.end(), 0.0f);
  }
};

TEST(BarnesHut, ApproximatesBruteForce) {
  BhSetup s(800, 21);
  const float theta = 0.5f;
  (void)apps::barneshut_sequential(s.prog, theta);
  std::vector<float> bx, by, bz;
  brute_forces(s.bodies, s.prog.eps2, bx, by, bz);
  double err = 0, norm = 0;
  for (std::size_t i = 0; i < s.bodies.size(); ++i) {
    const double dx = s.ax[i] - bx[i];
    const double dy = s.ay[i] - by[i];
    const double dz = s.az[i] - bz[i];
    err += dx * dx + dy * dy + dz * dz;
    norm += static_cast<double>(bx[i]) * bx[i] + static_cast<double>(by[i]) * by[i] +
            static_cast<double>(bz[i]) * bz[i];
  }
  // Relative RMS force error for theta=0.5 is well under a few percent.
  EXPECT_LT(std::sqrt(err / norm), 0.05);
}

TEST(BarnesHut, InteractionFingerprintIdenticalAcrossVariants) {
  BhSetup s(500, 22);
  const float theta = 0.6f;
  const std::uint64_t expected = apps::barneshut_sequential(s.prog, theta);
  const auto roots = s.prog.roots(theta);
  tbtest::expect_seq_matrix(s.prog, roots, Thresholds{8, 256, 128, 32}, expected,
                            tbtest::kAllLayers, [&] { s.reset(); });
}

TEST(BarnesHut, BlockedForcesMatchSequentialTraversal) {
  BhSetup s(600, 23);
  const float theta = 0.5f;
  (void)apps::barneshut_sequential(s.prog, theta);
  std::vector<float> ref_x = s.ax, ref_y = s.ay, ref_z = s.az;
  s.reset();
  const auto roots = s.prog.roots(theta);
  const Thresholds th{8, 512, 256, 64};
  (void)core::run_seq<core::SimdExec<apps::BarnesHutProgram>>(s.prog, roots,
                                                              SeqPolicy::Restart, th);
  for (std::size_t i = 0; i < s.bodies.size(); ++i) {
    // Same interactions, different summation order: tight but not exact.
    EXPECT_NEAR(s.ax[i], ref_x[i], 2e-3f + 1e-3f * std::abs(ref_x[i]));
    EXPECT_NEAR(s.ay[i], ref_y[i], 2e-3f + 1e-3f * std::abs(ref_y[i]));
  }
}

TEST(BarnesHut, ParallelSchedulersKeepFingerprint) {
  rt::ForkJoinPool pool(4);
  BhSetup s(400, 24);
  const float theta = 0.6f;
  const std::uint64_t expected = apps::barneshut_sequential(s.prog, theta);
  const auto roots = s.prog.roots(theta);
  const Thresholds th{8, 256, 128, 32};
  s.reset();
  EXPECT_EQ(
      core::run_par_reexp<core::SimdExec<apps::BarnesHutProgram>>(pool, s.prog, roots, th),
      expected);
  s.reset();
  EXPECT_EQ(
      core::run_par_restart<core::SimdExec<apps::BarnesHutProgram>>(pool, s.prog, roots, th),
      expected);
  s.reset();
  EXPECT_EQ(apps::barneshut_cilk(pool, s.prog, theta), expected);
}

// ---- knn ------------------------------------------------------------------------

TEST(Knn, SequentialMatchesBruteForce) {
  const auto p = spatial::Bodies::uniform_cube(500, 31);
  const auto t = spatial::KdTree::build(p, 16);
  const int k = 4;
  apps::KnnState state(p.size(), k);
  apps::KnnProgram prog{&p, &t, &state};
  apps::knn_sequential(prog);
  for (std::int32_t q = 0; q < 50; ++q) {
    const auto got = state.distances(q);
    const auto want = apps::knn_bruteforce(p, q, k);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_NEAR(got[i], want[i], 1e-6f) << "query " << q << " rank " << i;
    }
  }
}

TEST(Knn, AllSchedulerVariantsFindTheNeighbors) {
  const auto p = spatial::Bodies::plummer(400, 32);
  const auto t = spatial::KdTree::build(p, 8);
  const int k = 3;
  const Thresholds th{8, 256, 128, 32};
  for_each_policy([&](SeqPolicy pol) {
    apps::KnnState state(p.size(), k);
    apps::KnnProgram prog{&p, &t, &state};
    const auto roots = prog.roots();
    (void)core::run_seq<core::SimdExec<apps::KnnProgram>>(prog, roots, pol, th);
    for (std::int32_t q = 0; q < static_cast<std::int32_t>(p.size()); q += 17) {
      const auto got = state.distances(q);
      const auto want = apps::knn_bruteforce(p, q, k);
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_NEAR(got[i], want[i], 1e-6f) << "query " << q << " rank " << i;
      }
    }
  });
}

TEST(Knn, ParallelSchedulersFindTheNeighbors) {
  rt::ForkJoinPool pool(4);
  const auto p = spatial::Bodies::uniform_cube(300, 33);
  const auto t = spatial::KdTree::build(p, 8);
  const int k = 4;
  apps::KnnState state(p.size(), k);
  apps::KnnProgram prog{&p, &t, &state};
  const auto roots = prog.roots();
  const Thresholds th{8, 128, 64, 16};
  (void)core::run_par_restart<core::SimdExec<apps::KnnProgram>>(pool, prog, roots, th);
  for (std::int32_t q = 0; q < static_cast<std::int32_t>(p.size()); q += 11) {
    const auto got = state.distances(q);
    const auto want = apps::knn_bruteforce(p, q, k);
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_NEAR(got[i], want[i], 1e-6f) << "query " << q << " rank " << i;
    }
  }
}

TEST(Knn, CilkVariantFindsTheNeighbors) {
  rt::ForkJoinPool pool(4);
  const auto p = spatial::Bodies::uniform_cube(250, 34);
  const auto t = spatial::KdTree::build(p, 8);
  apps::KnnState state(p.size(), 2);
  apps::KnnProgram prog{&p, &t, &state};
  apps::knn_cilk(pool, prog);
  for (std::int32_t q = 0; q < static_cast<std::int32_t>(p.size()); q += 13) {
    const auto got = state.distances(q);
    const auto want = apps::knn_bruteforce(p, q, 2);
    for (std::size_t i = 0; i < want.size(); ++i) EXPECT_NEAR(got[i], want[i], 1e-6f);
  }
}

}  // namespace
