// Tests for the minmaxdist workload (apps/minmaxdist.hpp): brute-force
// agreement, the scheduler matrix (policies × layers) against the
// sequential oracle digest, the Cilk path, the classic lockstep kernel, the
// blocked engine, and degenerate instances.  The final per-query extremes
// are order-independent, so every comparison is exact (bit-identical state
// digests).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "apps/minmaxdist.hpp"
#include "core/driver.hpp"
#include "lockstep/lockstep_minmax.hpp"
#include "spatial/bodies.hpp"
#include "spatial/kdtree.hpp"
#include "tests/support/harness.hpp"

namespace {

using namespace tb;

struct Instance {
  spatial::Bodies pts;
  spatial::KdTree tree;
  explicit Instance(std::size_t n, std::uint64_t seed = 29, int leaf = 16)
      : pts(spatial::Bodies::uniform_cube(n, seed)), tree(spatial::KdTree::build(pts, leaf)) {}
};

std::string seq_digest(const Instance& inst) {
  apps::MinmaxDistState state(inst.pts.size());
  apps::MinmaxDistProgram prog{&inst.pts, &inst.tree, &state};
  apps::minmaxdist_sequential(prog);
  return apps::minmaxdist_digest(state);
}

TEST(MinmaxDist, SequentialMatchesBruteForce) {
  const Instance inst(400, 31, 8);
  apps::MinmaxDistState state(inst.pts.size());
  apps::MinmaxDistProgram prog{&inst.pts, &inst.tree, &state};
  apps::minmaxdist_sequential(prog);
  for (const std::int32_t q : {0, 57, 233, 399}) {
    const auto [mn, mx] = apps::minmaxdist_bruteforce(inst.pts, q);
    EXPECT_EQ(state.min_bound(q), mn) << "query " << q;
    EXPECT_EQ(state.max_bound(q), mx) << "query " << q;
  }
}

TEST(MinmaxDist, BoundsAreOrderedAndPositive) {
  const Instance inst(600, 7);
  apps::MinmaxDistState state(inst.pts.size());
  apps::MinmaxDistProgram prog{&inst.pts, &inst.tree, &state};
  apps::minmaxdist_sequential(prog);
  for (std::int32_t q = 0; q < static_cast<std::int32_t>(inst.pts.size()); ++q) {
    EXPECT_GT(state.min_bound(q), 0.0f);
    EXPECT_LE(state.min_bound(q), state.max_bound(q));
  }
}

TEST(MinmaxDist, SchedulerMatrixMatchesOracle) {
  const Instance inst(800, 11);
  const std::string expected = seq_digest(inst);
  for (const auto& th : tbtest::threshold_presets()) {
    SCOPED_TRACE(tbtest::threshold_name(th));
    apps::MinmaxDistState state(inst.pts.size());
    apps::MinmaxDistProgram prog{&inst.pts, &inst.tree, &state};
    const auto roots = prog.roots();
    tbtest::for_each_seq_result(
        prog, roots, th, tbtest::kAllLayers,
        [&](const auto&) { EXPECT_EQ(apps::minmaxdist_digest(state), expected); },
        [&] { state = apps::MinmaxDistState(inst.pts.size()); });
  }
}

TEST(MinmaxDist, ParallelSchedulersMatchOracle) {
  const Instance inst(800, 11);
  const std::string expected = seq_digest(inst);
  const auto th = core::Thresholds::for_block_size(apps::MinmaxDistProgram::simd_width,
                                                   256, 32);
  for (const int workers : tbtest::kWorkerCounts) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    rt::ForkJoinPool pool(workers);
    {
      apps::MinmaxDistState state(inst.pts.size());
      apps::MinmaxDistProgram prog{&inst.pts, &inst.tree, &state};
      const auto roots = prog.roots();
      (void)core::run_par_reexp<core::SimdExec<apps::MinmaxDistProgram>>(pool, prog, roots,
                                                                         th);
      EXPECT_EQ(apps::minmaxdist_digest(state), expected) << "reexp";
    }
    {
      apps::MinmaxDistState state(inst.pts.size());
      apps::MinmaxDistProgram prog{&inst.pts, &inst.tree, &state};
      const auto roots = prog.roots();
      (void)core::run_par_restart<core::SimdExec<apps::MinmaxDistProgram>>(pool, prog,
                                                                           roots, th);
      EXPECT_EQ(apps::minmaxdist_digest(state), expected) << "restart";
    }
    {
      apps::MinmaxDistState state(inst.pts.size());
      apps::MinmaxDistProgram prog{&inst.pts, &inst.tree, &state};
      apps::minmaxdist_cilk(pool, prog);
      EXPECT_EQ(apps::minmaxdist_digest(state), expected) << "cilk";
    }
  }
}

TEST(MinmaxDist, LockstepAndBlockedMatchOracle) {
  const Instance inst(900, 3);
  const std::string expected = seq_digest(inst);
  {
    apps::MinmaxDistState state(inst.pts.size());
    apps::MinmaxDistProgram prog{&inst.pts, &inst.tree, &state};
    lockstep::LockstepStats ls;
    lockstep::lockstep_minmaxdist(prog, &ls);
    EXPECT_EQ(apps::minmaxdist_digest(state), expected);
    EXPECT_GT(ls.node_visits, 0u);
  }
  for (const std::size_t t_reexp : {std::size_t{0}, std::size_t{64}, std::size_t{1} << 30}) {
    SCOPED_TRACE("t_reexp=" + std::to_string(t_reexp));
    apps::MinmaxDistState state(inst.pts.size());
    apps::MinmaxDistProgram prog{&inst.pts, &inst.tree, &state};
    core::ExecStats st;
    lockstep::blocked_minmaxdist(prog, t_reexp, &st);
    EXPECT_EQ(apps::minmaxdist_digest(state), expected);
    EXPECT_GT(st.tasks_executed, 0u);
  }
}

TEST(MinmaxDist, DegenerateInstances) {
  {
    // A single point: no other point exists, the sentinels survive.
    const Instance inst(1, 5, 4);
    apps::MinmaxDistState state(1);
    apps::MinmaxDistProgram prog{&inst.pts, &inst.tree, &state};
    apps::minmaxdist_sequential(prog);
    EXPECT_EQ(state.min_bound(0), std::numeric_limits<float>::infinity());
    EXPECT_EQ(state.max_bound(0), -1.0f);
    // Blocked engine agrees on the degenerate digest.
    apps::MinmaxDistState state2(1);
    apps::MinmaxDistProgram prog2{&inst.pts, &inst.tree, &state2};
    lockstep::blocked_minmaxdist(prog2);
    EXPECT_EQ(apps::minmaxdist_digest(state2), apps::minmaxdist_digest(state));
  }
  {
    // Fewer points than the SIMD width: partial-lane paths everywhere.
    const Instance inst(3, 9, 4);
    apps::MinmaxDistState state(3);
    apps::MinmaxDistProgram prog{&inst.pts, &inst.tree, &state};
    lockstep::blocked_minmaxdist(prog);
    const std::string blocked = apps::minmaxdist_digest(state);
    EXPECT_EQ(seq_digest(inst), blocked);
  }
}

}  // namespace
