// Per-benchmark correctness tests: every scheduler variant must match the
// plain sequential recursion, and the Cilk-style versions must match under
// any worker count.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/graphcol.hpp"
#include "apps/minmax.hpp"
#include "apps/nqueens.hpp"
#include "apps/uts.hpp"
#include "core/driver.hpp"
#include "tests/support/harness.hpp"

namespace {

using namespace tb;
using core::SeqPolicy;
using core::Thresholds;

// ---- nqueens -------------------------------------------------------------------

TEST(NQueens, KnownSolutionCounts) {
  EXPECT_EQ(apps::nqueens_sequential(4, 0, 0, 0), 2u);
  EXPECT_EQ(apps::nqueens_sequential(6, 0, 0, 0), 4u);
  EXPECT_EQ(apps::nqueens_sequential(8, 0, 0, 0), 92u);
  EXPECT_EQ(apps::nqueens_sequential(10, 0, 0, 0), 724u);
}

class NQueensSchedTest : public ::testing::TestWithParam<int> {};

TEST_P(NQueensSchedTest, AllLayersAllPolicies) {
  const int n = GetParam();
  apps::NQueensProgram prog{n};
  const auto roots = std::vector{apps::NQueensProgram::root()};
  const std::uint64_t expected = apps::nqueens_sequential(n, 0, 0, 0);
  tbtest::expect_seq_matrix(prog, roots, Thresholds{8, 128, 64, 16}, expected);
}

INSTANTIATE_TEST_SUITE_P(Boards, NQueensSchedTest, ::testing::Values(5, 6, 7, 8, 9));

TEST(NQueens, CilkMatchesSequential) {
  rt::ForkJoinPool pool(4);
  EXPECT_EQ(apps::nqueens_cilk(pool, 8), 92u);
  EXPECT_EQ(apps::nqueens_cilk(pool, 9), 352u);
}

TEST(NQueens, ParallelSchedulersMatch) {
  apps::NQueensProgram prog{9};
  const auto roots = std::vector{apps::NQueensProgram::root()};
  tbtest::expect_par_matrix(prog, roots, Thresholds{8, 128, 64, 16}, std::uint64_t{352});
}

// ---- graphcol ------------------------------------------------------------------

TEST(GraphCol, EmptyGraphAllColorings) {
  // With no edges, every vertex can take any of the 3 colors.
  auto g = apps::GraphColInstance::random(6, 0.0);
  EXPECT_EQ(apps::graphcol_sequential(g, apps::GraphColProgram::root()), 729u);  // 3^6
}

TEST(GraphCol, TriangleHasSixColorings) {
  apps::GraphColInstance g;
  g.num_vertices = 3;
  g.lower_adj = {{}, {0}, {0, 1}};
  EXPECT_EQ(apps::graphcol_sequential(g, apps::GraphColProgram::root()), 6u);  // 3!
}

TEST(GraphCol, CompleteK4HasNo3Coloring) {
  apps::GraphColInstance g;
  g.num_vertices = 4;
  g.lower_adj = {{}, {0}, {0, 1}, {0, 1, 2}};
  EXPECT_EQ(apps::graphcol_sequential(g, apps::GraphColProgram::root()), 0u);
}

class GraphColSchedTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphColSchedTest, AllLayersAllPolicies) {
  const auto g = apps::GraphColInstance::random(GetParam(), 2.5, 11);
  apps::GraphColProgram prog{&g};
  const auto roots = std::vector{apps::GraphColProgram::root()};
  const std::uint64_t expected = apps::graphcol_sequential(g, apps::GraphColProgram::root());
  tbtest::expect_seq_matrix(prog, roots, Thresholds{4, 256, 128, 32}, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GraphColSchedTest, ::testing::Values(8, 10, 11, 12));

TEST(GraphCol, VertexAbove32UsesHighWord) {
  // Exercise the hi-word path (vertices >= 32) without a combinatorial
  // blow-up: each vertex is adjacent to its two predecessors, so after the
  // first two choices every color is forced — exactly 3·2 = 6 colorings,
  // but the recursion still packs/reads colors of vertices 32..39.
  apps::GraphColInstance g;
  g.num_vertices = 40;
  g.lower_adj.resize(40);
  g.lower_adj[1] = {0};
  for (int v = 2; v < 40; ++v) g.lower_adj[static_cast<std::size_t>(v)] = {v - 2, v - 1};
  apps::GraphColProgram prog{&g};
  const auto roots = std::vector{apps::GraphColProgram::root()};
  const Thresholds th{4, 512, 256, 64};
  EXPECT_EQ(core::run_seq<core::SimdExec<apps::GraphColProgram>>(
                prog, roots, SeqPolicy::Restart, th),
            6u);
  EXPECT_EQ(core::run_seq<core::AosExec<apps::GraphColProgram>>(
                prog, roots, SeqPolicy::Reexp, th),
            6u);
}

TEST(GraphCol, CilkAndParallelMatch) {
  rt::ForkJoinPool pool(3);
  const auto g = apps::GraphColInstance::random(12, 3.0, 5);
  apps::GraphColProgram prog{&g};
  const std::uint64_t expected = apps::graphcol_sequential(g, apps::GraphColProgram::root());
  EXPECT_EQ(apps::graphcol_cilk(pool, g), expected);
  const auto roots = std::vector{apps::GraphColProgram::root()};
  tbtest::expect_par_matrix(prog, roots, Thresholds{4, 128, 64, 16}, expected);
}

// ---- uts -----------------------------------------------------------------------

TEST(Uts, DeterministicAcrossRuns) {
  apps::UtsProgram prog(apps::UtsParams{16, 4, 0.2, 3});
  EXPECT_EQ(apps::uts_sequential_all(prog), apps::uts_sequential_all(prog));
}

TEST(Uts, TreeIsNontrivialAndFinite) {
  apps::UtsProgram prog(apps::UtsParams{32, 4, 0.22, 5});
  const auto roots = prog.roots();
  const auto info = core::count_tree(prog, roots);
  EXPECT_GT(info.tasks, static_cast<std::uint64_t>(roots.size()));
  EXPECT_GT(info.levels, 3);
}

class UtsSchedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UtsSchedTest, AllLayersAllPolicies) {
  apps::UtsProgram prog(apps::UtsParams{32, 4, 0.21, GetParam()});
  const auto roots = prog.roots();
  const std::uint64_t expected = apps::uts_sequential_all(prog);
  tbtest::expect_seq_matrix(prog, roots, Thresholds{4, 128, 64, 16}, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UtsSchedTest, ::testing::Values(1, 2, 3, 4, 99));

TEST(Uts, CilkAndParallelMatch) {
  rt::ForkJoinPool pool(4);
  apps::UtsProgram prog(apps::UtsParams{32, 4, 0.21, 7});
  const std::uint64_t expected = apps::uts_sequential_all(prog);
  EXPECT_EQ(apps::uts_cilk(pool, prog), expected);
  const auto roots = prog.roots();
  tbtest::expect_par_matrix(prog, roots, Thresholds{4, 128, 64, 16}, expected);
}

// ---- minmax --------------------------------------------------------------------

TEST(Minmax, WinDetection) {
  EXPECT_TRUE(apps::MinmaxProgram::won(0x000Fu));   // bottom row
  EXPECT_TRUE(apps::MinmaxProgram::won(0x8421u));   // diagonal
  EXPECT_TRUE(apps::MinmaxProgram::won(0xFFFFu));   // full board
  EXPECT_FALSE(apps::MinmaxProgram::won(0x0007u));  // three in a row only
  EXPECT_FALSE(apps::MinmaxProgram::won(0));
}

TEST(Minmax, LeafStatisticsConsistency) {
  apps::MinmaxProgram prog{6};
  const auto r = apps::minmax_sequential(prog, apps::MinmaxProgram::root());
  EXPECT_GT(r.leaves, 0u);
  EXPECT_EQ(r.score_sum,
            static_cast<std::int64_t>(r.x_wins) - static_cast<std::int64_t>(r.o_wins));
  EXPECT_LE(r.x_wins + r.o_wins, r.leaves);
}

class MinmaxSchedTest : public ::testing::TestWithParam<int> {};

TEST_P(MinmaxSchedTest, AllLayersAllPolicies) {
  apps::MinmaxProgram prog{GetParam()};
  const auto roots = std::vector{apps::MinmaxProgram::root()};
  const auto expected = apps::minmax_sequential(prog, apps::MinmaxProgram::root());
  tbtest::expect_seq_matrix(prog, roots, Thresholds{8, 256, 128, 32}, expected);
}

INSTANTIATE_TEST_SUITE_P(PlyLimits, MinmaxSchedTest, ::testing::Values(3, 4, 5));

TEST(Minmax, CilkAndParallelMatch) {
  rt::ForkJoinPool pool(4);
  apps::MinmaxProgram prog{5};
  const auto expected = apps::minmax_sequential(prog, apps::MinmaxProgram::root());
  EXPECT_EQ(apps::minmax_cilk(pool, prog), expected);
  const auto roots = std::vector{apps::MinmaxProgram::root()};
  tbtest::expect_par_matrix(prog, roots, Thresholds{8, 256, 128, 32}, expected);
}

TEST(Minmax, TrueMinimaxValueOfEmpty4x4IsDraw) {
  // With a shallow cutoff neither side can force a win from the empty board.
  apps::MinmaxProgram prog{5};
  EXPECT_EQ(apps::minmax_value(prog, apps::MinmaxProgram::root()), 0);
}

}  // namespace
