// Additional core coverage: the leveled deque's restart-scan semantics, the
// block pool, threshold clamping, the ideal (Fig. 3b) restart scheduler,
// tree materialization, and multi-root / multi-degree simulation.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/fib.hpp"
#include "apps/minmax.hpp"
#include "apps/nqueens.hpp"
#include "apps/parentheses.hpp"
#include "apps/uts.hpp"
#include "core/block_pool.hpp"
#include "core/driver.hpp"
#include "core/ideal_restart.hpp"
#include "core/leveled_deque.hpp"
#include "sim/materialize.hpp"
#include "sim/par_sim.hpp"
#include "sim/tree_program.hpp"

namespace {

using namespace tb;
using Block = core::AosBlock<int>;

Block make_block(int level, std::initializer_list<int> vals) {
  Block b;
  b.set_level(level);
  for (int v : vals) b.push_back(v);
  return b;
}

// ---- LeveledDeque ---------------------------------------------------------------

TEST(LeveledDeque, PopDeepestOrder) {
  core::LeveledDeque<Block> dq;
  dq.push(make_block(1, {1}));
  dq.push(make_block(3, {3}));
  dq.push(make_block(2, {2}));
  Block out;
  ASSERT_TRUE(dq.pop_deepest(out));
  EXPECT_EQ(out.level(), 3);
  ASSERT_TRUE(dq.pop_deepest(out));
  EXPECT_EQ(out.level(), 2);
  ASSERT_TRUE(dq.pop_deepest(out));
  EXPECT_EQ(out.level(), 1);
  EXPECT_FALSE(dq.pop_deepest(out));
}

TEST(LeveledDeque, PushMergeConcatenatesSameLevel) {
  core::LeveledDeque<Block> dq;
  dq.push_merge(make_block(2, {1, 2}));
  dq.push_merge(make_block(2, {3}));
  EXPECT_EQ(dq.blocks_at(2), 1u);
  EXPECT_EQ(dq.total_tasks(), 3u);
  Block out;
  ASSERT_TRUE(dq.pop_deepest(out));
  EXPECT_EQ(out.size(), 3u);
}

TEST(LeveledDeque, PushKeepsBlocksDistinct) {
  core::LeveledDeque<Block> dq;
  dq.push(make_block(2, {1}));
  dq.push(make_block(2, {2}));
  EXPECT_EQ(dq.blocks_at(2), 2u);
}

TEST(LeveledDeque, RestartScanFindsDeepestDenseLevel) {
  core::LeveledDeque<Block> dq;
  dq.push_merge(make_block(1, {1, 2, 3, 4, 5}));  // dense but shallow
  dq.push_merge(make_block(4, {6, 7, 8}));        // dense and deepest
  dq.push_merge(make_block(6, {9}));              // deepest but sparse
  Block out;
  const auto r = dq.restart_scan(/*threshold=*/3, out, /*cap=*/100);
  EXPECT_EQ(r, core::LeveledDeque<Block>::Scan::Dense);
  EXPECT_EQ(out.level(), 4);
  EXPECT_EQ(out.size(), 3u);
  // The sparse deeper block and the shallow one remain.
  EXPECT_EQ(dq.total_tasks(), 6u);
}

TEST(LeveledDeque, RestartScanMergesBeforeJudging) {
  core::LeveledDeque<Block> dq;
  dq.push(make_block(2, {1, 2}));
  dq.push(make_block(2, {3, 4}));
  Block out;
  // Individually below threshold 3, merged above it.
  EXPECT_EQ(dq.restart_scan(3, out, 100), core::LeveledDeque<Block>::Scan::Dense);
  EXPECT_EQ(out.size(), 4u);
}

TEST(LeveledDeque, RestartScanReturnsTopWhenNothingDense) {
  core::LeveledDeque<Block> dq;
  dq.push_merge(make_block(1, {1}));
  dq.push_merge(make_block(5, {2}));
  Block out;
  EXPECT_EQ(dq.restart_scan(10, out, 100), core::LeveledDeque<Block>::Scan::Top);
  EXPECT_EQ(out.level(), 1);  // shallowest
  EXPECT_EQ(dq.total_tasks(), 1u);
}

TEST(LeveledDeque, RestartScanRespectsCap) {
  core::LeveledDeque<Block> dq;
  Block big = make_block(3, {});
  for (int i = 0; i < 100; ++i) big.push_back(i);
  dq.push_merge(std::move(big));
  Block out;
  EXPECT_EQ(dq.restart_scan(8, out, /*cap=*/32), core::LeveledDeque<Block>::Scan::Dense);
  EXPECT_EQ(out.size(), 32u);
  EXPECT_EQ(dq.total_tasks(), 68u);  // remainder stays parked
}

TEST(LeveledDeque, StealShallowestTakesTop) {
  core::LeveledDeque<Block> dq;
  dq.push_merge(make_block(2, {1, 2}));
  dq.push_merge(make_block(5, {3}));
  Block out;
  ASSERT_TRUE(dq.steal_shallowest(out, 100));
  EXPECT_EQ(out.level(), 2);
  ASSERT_TRUE(dq.steal_shallowest(out, 100));
  EXPECT_EQ(out.level(), 5);
  EXPECT_FALSE(dq.steal_shallowest(out, 100));
}

TEST(LeveledDeque, AbsorbLevelPullsParkedBlocks) {
  core::LeveledDeque<Block> dq;
  dq.push_merge(make_block(3, {1, 2}));
  Block cur = make_block(3, {10});
  dq.absorb_level(3, cur);
  EXPECT_EQ(cur.size(), 3u);
  EXPECT_TRUE(dq.empty());
}

// ---- BlockPool / Thresholds -------------------------------------------------------

TEST(BlockPool, RecyclesClearedBlocks) {
  core::BlockPool<Block> pool;
  Block b = pool.get(3);
  b.push_back(1);
  b.push_back(2);
  pool.put(std::move(b));
  Block c = pool.get(7);
  EXPECT_EQ(c.level(), 7);
  EXPECT_TRUE(c.empty());
}

TEST(Thresholds, ClampOrdering) {
  const auto t = core::Thresholds{8, 100, 400, 900}.clamped();
  EXPECT_EQ(t.t_dfe, 100u);
  EXPECT_EQ(t.t_bfe, 100u);     // clamped down to t_dfe
  EXPECT_EQ(t.t_restart, 100u); // clamped down to t_dfe
  const auto tiny = core::Thresholds{8, 0, 0, 0}.clamped();
  EXPECT_EQ(tiny.t_dfe, 1u);  // sub-Q blocks stay legal (Fig. 4 sweeps 2^0)
}

TEST(Thresholds, ForBlockSizeDefaults) {
  const auto t = core::Thresholds::for_block_size(8, 1024);
  EXPECT_EQ(t.q, 8);
  EXPECT_EQ(t.t_dfe, 1024u);
  EXPECT_EQ(t.t_bfe, 1024u);  // k1 ≈ k
  EXPECT_EQ(t.t_restart, 64u);
}

// ---- IdealRestart ------------------------------------------------------------------

class IdealRestartTest : public ::testing::TestWithParam<int> {};

TEST_P(IdealRestartTest, FibMatchesOracle) {
  apps::FibProgram prog;
  const auto roots = std::vector{apps::FibProgram::root(23)};
  const auto th = core::Thresholds::for_block_size(8, 256, 32);
  EXPECT_EQ(core::run_ideal_restart<core::SimdExec<apps::FibProgram>>(prog, roots, th,
                                                                      GetParam()),
            apps::fib_sequential(23));
}

TEST_P(IdealRestartTest, ParenthesesMatchesOracle) {
  apps::ParenthesesProgram prog;
  const auto roots = std::vector{apps::ParenthesesProgram::root(11)};
  const auto th = core::Thresholds::for_block_size(8, 128, 16);
  EXPECT_EQ(core::run_ideal_restart<core::SoaExec<apps::ParenthesesProgram>>(prog, roots, th,
                                                                             GetParam()),
            apps::parentheses_sequential(11, 11));
}

TEST_P(IdealRestartTest, NQueensHighFanoutMatchesOracle) {
  apps::NQueensProgram prog{9};
  const auto roots = std::vector{apps::NQueensProgram::root()};
  const auto th = core::Thresholds::for_block_size(8, 128, 16);
  EXPECT_EQ(core::run_ideal_restart<core::SimdExec<apps::NQueensProgram>>(prog, roots, th,
                                                                          GetParam()),
            352u);
}

TEST_P(IdealRestartTest, CensusIsExact) {
  apps::UtsProgram prog(apps::UtsParams{64, 4, 0.22, 5});
  const auto roots = prog.roots();
  const auto info = core::count_tree(prog, roots);
  core::ExecStats st;
  const auto th = core::Thresholds::for_block_size(4, 64, 8);
  (void)core::run_ideal_restart<core::SimdExec<apps::UtsProgram>>(prog, roots, th, GetParam(),
                                                                  &st);
  EXPECT_EQ(st.tasks_executed, info.tasks);
  EXPECT_EQ(st.leaves, info.leaves);
}

INSTANTIATE_TEST_SUITE_P(Workers, IdealRestartTest, ::testing::Values(1, 2, 4, 8));

TEST(IdealRestart, RepeatedRunsStayCorrect) {
  apps::MinmaxProgram prog{5};
  const auto roots = std::vector{apps::MinmaxProgram::root()};
  const auto expected = apps::minmax_sequential(prog, apps::MinmaxProgram::root());
  const auto th = core::Thresholds::for_block_size(8, 256, 32);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(core::run_ideal_restart<core::SimdExec<apps::MinmaxProgram>>(prog, roots, th, 4),
              expected);
  }
}

// ---- materialize + multi-root simulation -------------------------------------------

TEST(Materialize, FibTreeMatchesCensus) {
  apps::FibProgram prog;
  const auto roots = std::vector{apps::FibProgram::root(14)};
  const auto info = core::count_tree(prog, roots);
  const auto mat = sim::materialize(prog, roots);
  EXPECT_EQ(mat.tree.num_nodes(), info.tasks);
  EXPECT_EQ(mat.tree.height, info.levels);
  EXPECT_EQ(mat.tree.num_leaves(), info.leaves);
  ASSERT_EQ(mat.roots.size(), 1u);
}

TEST(Materialize, MultiRootPreservesRootCount) {
  apps::UtsProgram prog(apps::UtsParams{32, 4, 0.2, 9});
  const auto roots = prog.roots();
  const auto mat = sim::materialize(prog, roots);
  EXPECT_EQ(mat.roots.size(), roots.size());
  for (const auto r : mat.roots) EXPECT_EQ(mat.tree.depth[static_cast<std::size_t>(r)], 0);
}

TEST(Materialize, CapThrows) {
  apps::FibProgram prog;
  const auto roots = std::vector{apps::FibProgram::root(20)};
  EXPECT_THROW((void)sim::materialize(prog, roots, /*max_nodes=*/100), std::runtime_error);
}

TEST(ParSimMultiRoot, ExecutesAllRoots) {
  apps::UtsProgram prog(apps::UtsParams{48, 4, 0.21, 3});
  const auto roots = prog.roots();
  const auto mat = sim::materialize(prog, roots);
  for (const auto pol : {sim::SimPolicy::ScalarWS, sim::SimPolicy::Reexp,
                         sim::SimPolicy::Restart}) {
    sim::SimConfig cfg;
    cfg.p = 3;
    cfg.q = 4;
    cfg.policy = pol;
    const auto res = sim::simulate(mat.tree, cfg, mat.roots);
    EXPECT_EQ(res.tasks, mat.tree.num_nodes()) << sim::to_string(pol);
  }
}

TEST(ParSimMultiDegree, HandlesFanOutAboveTwo) {
  // nqueens(6) has out-degree up to 6; every task must still execute once.
  apps::NQueensProgram prog{6};
  const auto roots = std::vector{apps::NQueensProgram::root()};
  const auto mat = sim::materialize(prog, roots);
  EXPECT_GT(mat.tree.max_degree(), 2);
  sim::SimConfig cfg;
  cfg.p = 4;
  cfg.q = 8;
  cfg.t_dfe = 32;
  cfg.policy = sim::SimPolicy::Restart;
  const auto res = sim::simulate(mat.tree, cfg, mat.roots);
  EXPECT_EQ(res.tasks, mat.tree.num_nodes());
}

TEST(RandomBinaryGenerator, NeverDegenerate) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto t = sim::CompTree::random_binary(10000, 0.9, seed);
    EXPECT_GT(t.num_nodes(), 60u) << "seed " << seed;
  }
}

}  // namespace
