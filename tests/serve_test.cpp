// Tests for the query-serving layer: MPMC queue semantics, the admission
// batcher's max-batch/max-wait/deadline policy in exact virtual time, the
// adaptive (rate-derived) batch policy, latency percentile math, server
// lifecycle regressions (double-stop, stop-without-start, post-stop
// submit, backlog memory bound), the QueryServer end to end — single- and
// multi-kernel — against the sequential oracles, and the ISA-dispatch
// binding of serving lanes (active-table regression, forced-width
// validation/clamping, cross-ISA digest equivalence).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "apps/knn.hpp"
#include "apps/minmaxdist.hpp"
#include "apps/pointcorr.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/forkjoin.hpp"
#include "serve/batcher.hpp"
#include "serve/latency.hpp"
#include "serve/loadgen.hpp"
#include "serve/policy.hpp"
#include "serve/pool_runner.hpp"
#include "serve/queue.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "simd/dispatch.hpp"
#include "simd/isa.hpp"
#include "spatial/kdtree.hpp"

namespace {

using tb::serve::AdaptiveBatchPolicy;
using tb::serve::AdaptiveOptions;
using tb::serve::AdmissionBatcher;
using tb::serve::Batch;
using tb::serve::BatchPolicy;
using tb::serve::KernelOptions;
using tb::serve::KernelRouter;
using tb::serve::kNoDeadline;
using tb::serve::MpmcQueue;
using tb::serve::QueryServer;
using tb::serve::ServerOptions;

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpmcQueue<int>(1).capacity(), 8u);
  EXPECT_EQ(MpmcQueue<int>(8).capacity(), 8u);
  EXPECT_EQ(MpmcQueue<int>(9).capacity(), 16u);
  EXPECT_EQ(MpmcQueue<int>(1000).capacity(), 1024u);
}

TEST(MpmcQueue, FifoSingleThreaded) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  for (int i = 0; i < 5; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, FullAndEmptyAreDetected) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full
  EXPECT_EQ(q.size_approx(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_pop().has_value());
  EXPECT_FALSE(q.try_pop().has_value());  // empty
  EXPECT_EQ(q.size_approx(), 0u);
}

TEST(MpmcQueue, WrapsAroundManyGenerations) {
  MpmcQueue<int> q(8);
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.try_push(round * 6 + i));
    for (int i = 0; i < 6; ++i) {
      auto v = q.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, round * 6 + i);
    }
  }
}

// ---- AdmissionBatcher: pure virtual-time policy ---------------------------------

TEST(Batcher, SizeTriggerDispatchesExactlyMaxBatch) {
  AdmissionBatcher b({/*max_batch=*/4, /*max_wait_ns=*/1'000'000});
  for (std::int32_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(b.ready(/*now=*/i));  // not ready before the 4th arrival
    b.push(i, /*arrival=*/i);
  }
  EXPECT_TRUE(b.ready(/*now=*/3));  // full batch, no wait needed
  Batch out;
  ASSERT_TRUE(b.pop_ready(/*now=*/3, out));
  EXPECT_EQ(out.ids, (std::vector<std::int32_t>{0, 1, 2, 3}));
  EXPECT_EQ(out.arrival_ns, (std::vector<std::int64_t>{0, 1, 2, 3}));
  EXPECT_EQ(b.pending(), 0u);
}

TEST(Batcher, DeadlineTriggerFiresExactlyAtOldestPlusMaxWait) {
  AdmissionBatcher b({/*max_batch=*/4, /*max_wait_ns=*/1000});
  b.push(7, /*arrival=*/100);
  b.push(8, /*arrival=*/500);
  EXPECT_EQ(b.next_deadline_ns(), 1100);  // oldest arrival + max_wait
  EXPECT_FALSE(b.ready(1099));
  EXPECT_TRUE(b.ready(1100));  // boundary is inclusive
  Batch out;
  ASSERT_TRUE(b.pop_ready(1100, out));
  EXPECT_EQ(out.ids, (std::vector<std::int32_t>{7, 8}));
}

TEST(Batcher, ZeroMaxWaitServesImmediately) {
  AdmissionBatcher b({/*max_batch=*/64, /*max_wait_ns=*/0});
  b.push(1, 10);
  EXPECT_TRUE(b.ready(10));  // ready the instant it arrives
  Batch out;
  ASSERT_TRUE(b.pop_ready(10, out));
  EXPECT_EQ(out.size(), 1u);
}

TEST(Batcher, RemainderKeepsItsOwnDeadline) {
  AdmissionBatcher b({/*max_batch=*/4, /*max_wait_ns=*/1000});
  for (std::int32_t i = 0; i < 7; ++i) b.push(i, /*arrival=*/100 + i);
  Batch out;
  ASSERT_TRUE(b.pop_ready(/*now=*/106, out));  // size trigger: first 4
  EXPECT_EQ(out.ids, (std::vector<std::int32_t>{0, 1, 2, 3}));
  out.clear();
  // Three left — below max_batch, so they wait for the 5th arrival's
  // deadline (arrival 104 + 1000).
  EXPECT_EQ(b.pending(), 3u);
  EXPECT_EQ(b.next_deadline_ns(), 1104);
  EXPECT_FALSE(b.pop_ready(1103, out));
  ASSERT_TRUE(b.pop_ready(1104, out));
  EXPECT_EQ(out.ids, (std::vector<std::int32_t>{4, 5, 6}));
}

TEST(Batcher, NextDeadlineSentinelWhenEmpty) {
  AdmissionBatcher b({4, 1000});
  EXPECT_EQ(b.next_deadline_ns(), tb::serve::kNoDeadline);
  b.push(0, 50);
  EXPECT_EQ(b.next_deadline_ns(), 1050);
  Batch out;
  ASSERT_TRUE(b.flush(out));
  EXPECT_EQ(b.next_deadline_ns(), tb::serve::kNoDeadline);
}

TEST(Batcher, FlushDrainsWithoutDeadline) {
  AdmissionBatcher b({/*max_batch=*/4, /*max_wait_ns=*/1'000'000'000});
  for (std::int32_t i = 0; i < 6; ++i) b.push(i, i);
  Batch out;
  EXPECT_TRUE(b.flush(out));  // 4 (max_batch)
  EXPECT_EQ(out.size(), 4u);
  out.clear();
  EXPECT_TRUE(b.flush(out));  // remaining 2
  EXPECT_EQ(out.size(), 2u);
  out.clear();
  EXPECT_FALSE(b.flush(out));
}

// Regression: any workload that always keeps >= 1 query pending never hits
// the full-drain compaction, so before the threshold compaction the
// consumed prefix of the batcher's arrays grew forever.
TEST(Batcher, LongLivedBacklogStaysBounded) {
  AdmissionBatcher b({/*max_batch=*/1, /*max_wait_ns=*/0});
  b.push(0, 0);
  Batch out;
  for (std::int64_t i = 1; i <= 20000; ++i) {
    b.push(static_cast<std::int32_t>(i), i);  // backlog never drains fully
    out.clear();
    ASSERT_TRUE(b.pop_ready(i, out));
    ASSERT_EQ(out.size(), 1u);
    ASSERT_EQ(b.pending(), 1u);
  }
  // 20k consumed with 1 always pending: without compaction buffered() would
  // be 20001; with it the dead prefix is bounded by the threshold.
  EXPECT_LE(b.buffered(), b.pending() + 2 * AdmissionBatcher::kCompactThreshold);
}

// ---- deadline-aware admission (exact virtual time) ------------------------------

TEST(DeadlineAdmission, ShedsExpiredAndUnmeetableAtTheBoundary) {
  AdmissionBatcher b({/*max_batch=*/8, /*max_wait_ns=*/1000});
  b.set_service_estimate(100);
  // Already expired: deadline behind the virtual clock.
  EXPECT_FALSE(b.push(1, /*arrival=*/0, /*deadline=*/-1, /*now=*/0));
  // Unmeetable: even an immediate dispatch lands at now + 100 > 99.
  EXPECT_FALSE(b.push(2, 0, /*deadline=*/99, /*now=*/0));
  EXPECT_EQ(b.shed(), 2u);
  EXPECT_EQ(b.pending(), 0u);
  // Exactly meetable boundary: now + 100 > 100 is false — admitted.
  EXPECT_TRUE(b.push(3, 0, /*deadline=*/100, /*now=*/0));
  EXPECT_EQ(b.pending(), 1u);
  EXPECT_EQ(b.shed(), 2u);
}

TEST(DeadlineAdmission, NoDeadlineQueriesNeverShed) {
  AdmissionBatcher b({/*max_batch=*/8, /*max_wait_ns=*/1000});
  b.set_service_estimate(1'000'000'000);  // huge estimate must not matter
  EXPECT_TRUE(b.push(1, 0, kNoDeadline, /*now=*/999'999'999));
  EXPECT_EQ(b.shed(), 0u);
}

TEST(DeadlineAdmission, DeadlineForcesEarlyDispatch) {
  AdmissionBatcher b({/*max_batch=*/8, /*max_wait_ns=*/1000});
  b.set_service_estimate(100);
  ASSERT_TRUE(b.push(7, /*arrival=*/0, /*deadline=*/500, /*now=*/0));
  // max-wait alone would fire at 1000; the deadline pulls dispatch forward
  // to 500 - 100 (last instant a dispatch can still complete in time).
  EXPECT_EQ(b.next_deadline_ns(), 400);
  EXPECT_FALSE(b.ready(399));
  EXPECT_TRUE(b.ready(400));
  Batch out;
  ASSERT_TRUE(b.pop_ready(400, out));
  EXPECT_EQ(out.ids, (std::vector<std::int32_t>{7}));
  EXPECT_EQ(out.deadline_ns, (std::vector<std::int64_t>{500}));
}

TEST(DeadlineAdmission, UrgencyIsTightestEffectiveDeadlineInWindow) {
  AdmissionBatcher b({/*max_batch=*/4, /*max_wait_ns=*/1000});
  EXPECT_EQ(b.urgency_ns(), kNoDeadline);
  ASSERT_TRUE(b.push(1, /*arrival=*/100, kNoDeadline, /*now=*/100));
  EXPECT_EQ(b.urgency_ns(), 1100);  // no deadline -> max-wait expiry
  ASSERT_TRUE(b.push(2, /*arrival=*/200, /*deadline=*/900, /*now=*/200));
  EXPECT_EQ(b.urgency_ns(), 900);  // explicit deadline tightens the key
}

TEST(DeadlineAdmission, RouterPicksEarliestDeadlineAmongReadyLanes) {
  KernelRouter router;
  const auto noop = [](const std::int32_t*, std::size_t) {};
  KernelOptions kopt;
  kopt.policy = {/*max_batch=*/4, /*max_wait_ns=*/1000};
  const int bulk = router.add("bulk", kopt, noop);
  const int slo = router.add("slo", kopt, noop);
  EXPECT_EQ(router.pick_ready(/*now=*/0), -1);
  // Bulk lane: older arrival, no deadline (effective deadline 1000).
  ASSERT_TRUE(router.lane(bulk).admit(1, /*arrival=*/0, kNoDeadline, /*now=*/0));
  // SLO lane: newer arrival with a 600 deadline.
  ASSERT_TRUE(router.lane(slo).admit(2, /*arrival=*/50, /*deadline=*/600, /*now=*/50));
  // At t=2000 both lanes are past their triggers; EDF must pick the SLO
  // lane despite the bulk lane's older arrival.
  ASSERT_EQ(router.pick_ready(2000), slo);
  Batch out;
  ASSERT_TRUE(router.lane(slo).batcher().pop_ready(2000, out));
  EXPECT_EQ(router.pick_ready(2000), bulk);
  // Park horizon is the earliest lane deadline (bulk's max-wait expiry).
  EXPECT_EQ(router.next_deadline_ns(), 1000);
}

// ---- adaptive batch policy (exact virtual time) ---------------------------------

TEST(AdaptivePolicy, StaysAtMinBatchUntilRateIsKnown) {
  AdaptiveOptions opt;
  opt.enabled = true;
  opt.min_batch = 2;
  opt.max_batch = 64;
  opt.target_window_ns = 1000;
  AdaptiveBatchPolicy p(opt);
  EXPECT_EQ(p.current().max_batch, 2u);  // no arrivals
  EXPECT_EQ(p.current().max_wait_ns, 1000);
  p.observe_arrival(0);
  EXPECT_EQ(p.current().max_batch, 2u);  // one arrival: still no gap
}

TEST(AdaptivePolicy, SteadyRateFillsTheTargetWindow) {
  AdaptiveOptions opt;
  opt.enabled = true;
  opt.max_batch = 64;
  opt.target_window_ns = 1000;
  opt.ewma_shift = 3;
  AdaptiveBatchPolicy p(opt);
  // Arrivals every 100 ns: a 1000 ns window is expected to hold 10.
  for (std::int64_t t = 0; t <= 500; t += 100) p.observe_arrival(t);
  EXPECT_EQ(p.ewma_gap_ns(), 100);
  EXPECT_EQ(p.current().max_batch, 10u);
  EXPECT_EQ(p.current().max_wait_ns, 1000);
}

TEST(AdaptivePolicy, EwmaStepIsExact) {
  AdaptiveOptions opt;
  opt.enabled = true;
  opt.max_batch = 64;
  opt.target_window_ns = 1000;
  opt.ewma_shift = 3;
  AdaptiveBatchPolicy p(opt);
  p.observe_arrival(0);
  p.observe_arrival(100);  // seeds ewma = 100
  p.observe_arrival(110);  // gap 10: ewma += (10 - 100) >> 3 = -12 -> 88
  EXPECT_EQ(p.ewma_gap_ns(), 88);
  EXPECT_EQ(p.current().max_batch, 11u);  // 1000 / 88
}

TEST(AdaptivePolicy, ClampsToMinAndMaxBatch) {
  AdaptiveOptions opt;
  opt.enabled = true;
  opt.min_batch = 1;
  opt.max_batch = 64;
  opt.target_window_ns = 1000;
  // Burst (gap 1 ns): window/gap = 1000, clamped to 64.
  AdaptiveBatchPolicy fast(opt);
  fast.observe_arrival(0);
  fast.observe_arrival(1);
  EXPECT_EQ(fast.current().max_batch, 64u);
  // Sparse (gap 5000 ns > window): window/gap = 0, clamped to 1.
  AdaptiveBatchPolicy slow(opt);
  slow.observe_arrival(0);
  slow.observe_arrival(5000);
  EXPECT_EQ(slow.current().max_batch, 1u);
  // Out-of-order stamp clamps to a zero gap instead of going negative.
  AdaptiveBatchPolicy unordered(opt);
  unordered.observe_arrival(100);
  unordered.observe_arrival(50);
  EXPECT_EQ(unordered.ewma_gap_ns(), 0);
  EXPECT_EQ(unordered.current().max_batch, 64u);
}

// ---- latency percentiles --------------------------------------------------------

TEST(Latency, NearestRankPercentiles) {
  std::vector<double> samples;
  for (int i = 1000; i >= 1; --i) samples.push_back(static_cast<double>(i));
  const auto s = tb::serve::summarize_latencies(samples);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.p50, 500.0);   // rank ceil(0.5*1000)=500
  EXPECT_DOUBLE_EQ(s.p99, 990.0);   // rank 990
  EXPECT_DOUBLE_EQ(s.p999, 999.0);  // rank 999
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  EXPECT_DOUBLE_EQ(s.mean, 500.5);
}

TEST(Latency, EmptyAndSingleton) {
  std::vector<double> none;
  EXPECT_EQ(tb::serve::summarize_latencies(none).count, 0u);
  std::vector<double> one{3.5};
  const auto s = tb::serve::summarize_latencies(one);
  EXPECT_DOUBLE_EQ(s.p50, 3.5);
  EXPECT_DOUBLE_EQ(s.p999, 3.5);
}

// ---- QueryServer end to end ------------------------------------------------------

// A runner that records every id it sees (admission thread only — the
// mutex guards against nothing yet documents the contract for readers).
struct CountingRunner {
  std::mutex mu;
  std::vector<std::int32_t> seen;
  std::vector<std::size_t> batch_sizes;

  QueryServer::BatchRunner runner() {
    return [this](const std::int32_t* ids, std::size_t count) {
      const std::lock_guard<std::mutex> lock(mu);
      seen.insert(seen.end(), ids, ids + count);
      batch_sizes.push_back(count);
    };
  }
};

TEST(QueryServer, ServesEveryQueryExactlyOnce) {
  CountingRunner cr;
  ServerOptions opt;
  opt.policy = {/*max_batch=*/8, /*max_wait_ns=*/100'000};
  QueryServer server(opt, cr.runner());
  server.start();
  constexpr std::int32_t kN = 500;
  for (std::int32_t i = 0; i < kN; ++i) server.submit(i, tb::serve::now_ns());
  server.stop();

  EXPECT_EQ(server.completed(), static_cast<std::size_t>(kN));
  EXPECT_EQ(server.latencies_s().size(), static_cast<std::size_t>(kN));
  std::vector<int> times(kN, 0);
  for (const std::int32_t id : cr.seen) times[static_cast<std::size_t>(id)]++;
  for (std::int32_t i = 0; i < kN; ++i) EXPECT_EQ(times[static_cast<std::size_t>(i)], 1);
  for (const std::size_t s : cr.batch_sizes) EXPECT_LE(s, 8u);
  EXPECT_EQ(server.batches_dispatched(), cr.batch_sizes.size());
  EXPECT_GE(server.max_batch_seen(), 1u);
}

TEST(QueryServer, StopDrainsPendingPartialBatch) {
  CountingRunner cr;
  ServerOptions opt;
  // Huge max_wait: without the shutdown flush these would never dispatch.
  opt.policy = {/*max_batch=*/64, /*max_wait_ns=*/std::int64_t{3600} * 1'000'000'000};
  QueryServer server(opt, cr.runner());
  server.start();
  for (std::int32_t i = 0; i < 10; ++i) server.submit(i, tb::serve::now_ns());
  server.stop();
  EXPECT_EQ(server.completed(), 10u);
}

TEST(QueryServer, LoadGeneratorOffersAllQueries) {
  CountingRunner cr;
  ServerOptions opt;
  opt.policy = {/*max_batch=*/16, /*max_wait_ns=*/200'000};
  QueryServer server(opt, cr.runner());
  server.start();
  tb::serve::LoadGenOptions lg;
  lg.rate_qps = 50000.0;  // brief open-loop burst
  lg.total = 300;
  lg.id_space = 100;
  tb::serve::generate_load(server, lg);
  server.stop();
  EXPECT_EQ(server.completed(), 300u);
  const auto s = tb::serve::summarize_latencies(server.latencies_s());
  EXPECT_EQ(s.count, 300u);
  EXPECT_GT(s.p50, 0.0);
  EXPECT_GE(s.p999, s.p50);
}

// Serving knn through the hybrid executor must reproduce the sequential
// oracle exactly: round-robin load serves each query id exactly once, so
// the per-query k-best lists match knn_sequential's bit for bit.
TEST(QueryServer, KnnServeMatchesSequentialOracle) {
  constexpr std::size_t kPoints = 600;
  constexpr int kK = 4;
  const auto points = tb::spatial::Bodies::uniform_cube(kPoints);
  const auto tree = tb::spatial::KdTree::build(points, 16);

  tb::apps::KnnState oracle(kPoints, kK);
  {
    tb::apps::KnnProgram prog{&points, &tree, &oracle};
    tb::apps::knn_sequential(prog);
  }

  tb::apps::KnnState served(kPoints, kK);
  tb::apps::KnnProgram prog{&points, &tree, &served};
  tb::rt::ForkJoinPool pool(2);
  tb::rt::HybridOptions hopt;
  hopt.t_reexp = 4 * static_cast<std::size_t>(tb::simd::kernels().width);

  ServerOptions opt;
  opt.policy = {/*max_batch=*/32, /*max_wait_ns=*/200'000};
  QueryServer server(opt, tb::serve::knn_pool_runner(pool, hopt, prog));
  // Dispatch-native: the lane is bound to the process-wide active table.
  EXPECT_EQ(&server.serving_table(), &tb::simd::kernels());
  EXPECT_EQ(server.serving_width(), tb::simd::kernels().width);
  server.start();
  tb::serve::LoadGenOptions lg;
  lg.rate_qps = 0.0;  // closed loop
  lg.total = kPoints;
  lg.id_space = static_cast<std::int32_t>(kPoints);
  lg.round_robin = true;  // each id exactly once — duplicates would corrupt k-best
  tb::serve::generate_load(server, lg);
  server.stop();

  EXPECT_EQ(server.completed(), kPoints);
  for (std::int32_t q = 0; q < static_cast<std::int32_t>(kPoints); ++q) {
    const auto want = oracle.distances(q);
    const auto got = served.distances(q);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_FLOAT_EQ(want[j], got[j]) << "query " << q << " neighbor " << j;
    }
  }
}

// ---- lifecycle regressions ------------------------------------------------------

// Regression: stop() joined a non-joinable thread (std::system_error) when
// called without start() or a second time.
TEST(ServerLifecycle, StopWithoutStartIsSafe) {
  CountingRunner cr;
  QueryServer server(ServerOptions{}, cr.runner());
  server.stop();  // never started: must not throw
  EXPECT_EQ(server.completed(), 0u);
}  // destructor runs stop() again — must also be a no-op

TEST(ServerLifecycle, DoubleStopIsIdempotent) {
  CountingRunner cr;
  ServerOptions opt;
  opt.policy = {/*max_batch=*/8, /*max_wait_ns=*/0};
  QueryServer server(opt, cr.runner());
  server.start();
  for (std::int32_t i = 0; i < 20; ++i) server.submit(i, tb::serve::now_ns());
  server.stop();
  const std::size_t done = server.completed();
  server.stop();  // second stop: no join crash, no telemetry change
  EXPECT_EQ(server.completed(), done);
  EXPECT_EQ(done, 20u);
}

// Regression: submit() yield-spun forever when the server stopped while
// the queue was full, and try_submit() after stop() enqueued requests no
// one would ever drain.
TEST(ServerLifecycle, SubmitAfterStopIsRejected) {
  CountingRunner cr;
  QueryServer server(ServerOptions{}, cr.runner());
  server.start();
  ASSERT_TRUE(server.submit(1, tb::serve::now_ns()));
  server.stop();
  EXPECT_FALSE(server.try_submit(2, tb::serve::now_ns()));
  EXPECT_FALSE(server.submit(3, tb::serve::now_ns()));  // returns, never spins
  EXPECT_EQ(server.completed(), 1u);
  EXPECT_EQ(server.unserved_at_stop(), 0u);
}

// Requests accepted before start() on a server that never starts must be
// accounted (unserved_at_stop), not stranded in the queue.
TEST(ServerLifecycle, StopWithoutStartAccountsQueuedRequests) {
  CountingRunner cr;
  QueryServer server(ServerOptions{}, cr.runner());
  for (std::int32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(server.try_submit(i, tb::serve::now_ns()));
  }
  server.stop();
  EXPECT_EQ(server.completed(), 0u);
  EXPECT_EQ(server.unserved_at_stop(), 3u);
}

TEST(ServerLifecycle, SubmitToUnknownKernelIsRejected) {
  CountingRunner cr;
  QueryServer server(ServerOptions{}, cr.runner());
  server.start();
  EXPECT_FALSE(server.try_submit(/*kernel=*/5, 1, tb::serve::now_ns()));
  EXPECT_FALSE(server.submit(/*kernel=*/-1, 1, tb::serve::now_ns()));
  server.stop();
  EXPECT_EQ(server.completed(), 0u);
}

// ---- multi-kernel serving -------------------------------------------------------

TEST(MultiKernel, RoutesEachKernelToItsOwnRunner) {
  CountingRunner even, odd;
  QueryServer server(ServerOptions{});
  KernelOptions kopt;
  kopt.policy = {/*max_batch=*/8, /*max_wait_ns=*/100'000};
  const int ke = server.register_kernel("even", kopt, even.runner());
  const int ko = server.register_kernel("odd", kopt, odd.runner());
  EXPECT_EQ(server.kernels(), 2u);
  EXPECT_EQ(server.find_kernel("odd"), ko);
  EXPECT_EQ(server.kernel_name(ke), "even");
  server.start();
  constexpr std::int32_t kN = 400;
  for (std::int32_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(server.submit(i % 2 == 0 ? ke : ko, i, tb::serve::now_ns()));
  }
  server.stop();

  EXPECT_EQ(server.completed(ke), static_cast<std::size_t>(kN / 2));
  EXPECT_EQ(server.completed(ko), static_cast<std::size_t>(kN / 2));
  EXPECT_EQ(server.completed(), static_cast<std::size_t>(kN));
  EXPECT_EQ(server.latencies_s(ke).size(), static_cast<std::size_t>(kN / 2));
  EXPECT_EQ(server.latencies_s().size(), static_cast<std::size_t>(kN));
  EXPECT_EQ(server.batches_dispatched(),
            server.batches_dispatched(ke) + server.batches_dispatched(ko));
  for (const std::int32_t id : even.seen) EXPECT_EQ(id % 2, 0) << "wrong lane";
  for (const std::int32_t id : odd.seen) EXPECT_EQ(id % 2, 1) << "wrong lane";
  std::vector<int> times(kN, 0);
  for (const std::int32_t id : even.seen) times[static_cast<std::size_t>(id)]++;
  for (const std::int32_t id : odd.seen) times[static_cast<std::size_t>(id)]++;
  for (std::int32_t i = 0; i < kN; ++i) EXPECT_EQ(times[static_cast<std::size_t>(i)], 1);
}

// One server multiplexing knn + pointcorr + minmaxdist through the hybrid
// executor must reproduce all three sequential oracles exactly: round-robin
// load serves each (kernel, id) pair exactly once.
TEST(MultiKernel, ThreeKernelServeMatchesSequentialOracles) {
  constexpr std::size_t kPoints = 400;
  constexpr int kK = 4;
  constexpr float kRad2 = 0.05f;
  const auto points = tb::spatial::Bodies::uniform_cube(kPoints);
  const auto tree = tb::spatial::KdTree::build(points, 16);
  const auto n = static_cast<std::int32_t>(kPoints);

  // Sequential oracles.
  tb::apps::KnnState knn_oracle(kPoints, kK);
  {
    tb::apps::KnnProgram prog{&points, &tree, &knn_oracle};
    tb::apps::knn_sequential(prog);
  }
  tb::apps::PointCorrProgram pc_prog{&points, &tree, kRad2};
  const std::uint64_t pc_oracle = tb::apps::pointcorr_sequential(pc_prog);
  tb::apps::MinmaxDistState mm_oracle(kPoints);
  {
    tb::apps::MinmaxDistProgram prog{&points, &tree, &mm_oracle};
    tb::apps::minmaxdist_sequential(prog);
  }

  // Served states.
  tb::rt::ForkJoinPool pool(2);
  tb::rt::HybridOptions hopt;

  tb::apps::KnnState knn_served(kPoints, kK);
  tb::apps::KnnProgram knn_prog{&points, &tree, &knn_served};

  std::vector<tb::rt::Padded<std::uint64_t>> pc_parts(
      static_cast<std::size_t>(tb::rt::hybrid_slots(pool)));

  tb::apps::MinmaxDistState mm_served(kPoints);
  tb::apps::MinmaxDistProgram mm_prog{&points, &tree, &mm_served};

  QueryServer server(ServerOptions{});
  KernelOptions kopt;
  kopt.policy = {/*max_batch=*/32, /*max_wait_ns=*/200'000};
  const int k_knn =
      server.register_kernel("knn", kopt, tb::serve::knn_pool_runner(pool, hopt, knn_prog));
  const int k_pc = server.register_kernel(
      "pointcorr", kopt,
      tb::serve::pointcorr_pool_runner(pool, hopt, pc_prog, pc_parts.data()));
  const int k_mm = server.register_kernel(
      "minmaxdist", kopt, tb::serve::minmaxdist_pool_runner(pool, hopt, mm_prog));
  server.start();
  for (std::int32_t i = 0; i < n; ++i) {
    ASSERT_TRUE(server.submit(k_knn, i, tb::serve::now_ns()));
    ASSERT_TRUE(server.submit(k_pc, i, tb::serve::now_ns()));
    ASSERT_TRUE(server.submit(k_mm, i, tb::serve::now_ns()));
  }
  server.stop();

  EXPECT_EQ(server.completed(k_knn), kPoints);
  EXPECT_EQ(server.completed(k_pc), kPoints);
  EXPECT_EQ(server.completed(k_mm), kPoints);
  for (std::int32_t q = 0; q < n; ++q) {
    const auto want = knn_oracle.distances(q);
    const auto got = knn_served.distances(q);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_FLOAT_EQ(want[j], got[j]) << "knn query " << q << " neighbor " << j;
    }
  }
  std::uint64_t pc_total = 0;
  for (const auto& p : pc_parts) pc_total += p.value;
  EXPECT_EQ(pc_total, pc_oracle);
  EXPECT_EQ(tb::apps::minmaxdist_digest(mm_served), tb::apps::minmaxdist_digest(mm_oracle));
}

// ---- deadline-aware serving end to end ------------------------------------------

TEST(DeadlineServe, ExpiredDeadlinesAreShedNotServed) {
  CountingRunner cr;
  QueryServer server(ServerOptions{}, cr.runner());
  server.start();
  constexpr std::int32_t kN = 50;
  const std::int64_t arrival = tb::serve::now_ns() - 2'000'000;
  for (std::int32_t i = 0; i < kN; ++i) {
    // Deadline 1 ms in the past: admission must shed every one.
    ASSERT_TRUE(server.submit(0, i, arrival, arrival + 1'000'000));
  }
  server.stop();
  EXPECT_EQ(server.completed(), 0u);
  EXPECT_EQ(server.shed(), static_cast<std::size_t>(kN));
  EXPECT_TRUE(cr.seen.empty());
  EXPECT_TRUE(server.latencies_s().empty());
}

TEST(DeadlineServe, GenerousDeadlinesAllServedOnTime) {
  CountingRunner cr;
  ServerOptions opt;
  opt.policy = {/*max_batch=*/8, /*max_wait_ns=*/100'000};
  QueryServer server(opt, cr.runner());
  server.start();
  constexpr std::int32_t kN = 200;
  std::size_t accepted = 0;
  for (std::int32_t i = 0; i < kN; ++i) {
    const std::int64_t t = tb::serve::now_ns();
    if (server.submit(0, i, t, t + std::int64_t{600} * 1'000'000'000)) ++accepted;
  }
  server.stop();
  EXPECT_EQ(accepted, static_cast<std::size_t>(kN));
  EXPECT_EQ(server.completed(), static_cast<std::size_t>(kN));
  EXPECT_EQ(server.shed(), 0u);
  EXPECT_EQ(server.served_late(), 0u);
  // Accounting invariant: every accepted query lands in exactly one bucket.
  EXPECT_EQ(accepted, server.completed() + server.shed() + server.unserved_at_stop());
}

// ---- ISA-dispatch binding of serving lanes --------------------------------------

// FNV-1a over the served k-best float bits — the bit-identical currency
// the cross-table matrix compares in.
std::uint64_t knn_digest(const tb::apps::KnnState& st, std::size_t queries) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t q = 0; q < queries; ++q) {
    for (const float d : st.distances(static_cast<std::int32_t>(q))) {
      std::uint32_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      h = (h ^ bits) * 1099511628211ull;
    }
  }
  return h;
}

// Regression for the inert forced-ISA rerun: serving lanes must be bound
// to the PROCESS-WIDE active table, so `TB_SIMD_ISA=sse2 ctest -R serve`
// really serves through the sse2 table.  Before table threading the lane
// width was fixed at compile time and this env var changed nothing here.
// (Compared against kernels() rather than active_isa() by name: on an
// sse-only build of an AVX host, active_isa() stays high while kernels()
// correctly clamps to the widest compiled table — the lane must follow
// kernels().)
TEST(ServeDispatch, ActiveTableMatchesActiveIsa) {
  CountingRunner cr;
  QueryServer server(ServerOptions{}, cr.runner());
  const tb::simd::KernelTable& active = tb::simd::kernels();
  EXPECT_EQ(&server.serving_table(), &active);
  EXPECT_EQ(server.serving_width(), active.width);
  EXPECT_STREQ(server.serving_isa(), active.name);
  // kernels() already folds in TB_SIMD_ISA: never above the active level.
  EXPECT_LE(static_cast<int>(active.isa), static_cast<int>(tb::simd::active_isa()));
}

// Satellite: every runnable table serves knn/pointcorr/minmaxdist with
// bit-identical results (vs the sequential oracles and hence vs each
// other) and exact completed+shed+unserved accounting.
TEST(ServeDispatch, CrossIsaServeEquivalenceMatrix) {
  constexpr std::size_t kPoints = 300;
  constexpr int kK = 4;
  constexpr float kRad2 = 0.05f;
  const auto points = tb::spatial::Bodies::uniform_cube(kPoints);
  const auto tree = tb::spatial::KdTree::build(points, 16);
  const auto n = static_cast<std::int32_t>(kPoints);

  tb::apps::KnnState knn_oracle(kPoints, kK);
  {
    tb::apps::KnnProgram prog{&points, &tree, &knn_oracle};
    tb::apps::knn_sequential(prog);
  }
  const std::uint64_t knn_want = knn_digest(knn_oracle, kPoints);
  tb::apps::PointCorrProgram pc_prog{&points, &tree, kRad2};
  const std::uint64_t pc_want = tb::apps::pointcorr_sequential(pc_prog);
  tb::apps::MinmaxDistState mm_oracle(kPoints);
  {
    tb::apps::MinmaxDistProgram prog{&points, &tree, &mm_oracle};
    tb::apps::minmaxdist_sequential(prog);
  }
  const auto mm_want = tb::apps::minmaxdist_digest(mm_oracle);

  int count = 0;
  const tb::simd::KernelTable* const* tables = tb::simd::available_tables(count);
  ASSERT_GT(count, 0);
  for (int ti = 0; ti < count; ++ti) {
    const tb::simd::KernelTable* tab = tables[ti];
    SCOPED_TRACE(tab->name);
    tb::rt::ForkJoinPool pool(2);
    tb::rt::HybridOptions hopt;
    hopt.t_reexp = 4 * static_cast<std::size_t>(tab->width);

    tb::apps::KnnState knn_served(kPoints, kK);
    tb::apps::KnnProgram knn_prog{&points, &tree, &knn_served};
    std::vector<tb::rt::Padded<std::uint64_t>> pc_parts(
        static_cast<std::size_t>(tb::rt::hybrid_slots(pool)));
    tb::apps::MinmaxDistState mm_served(kPoints);
    tb::apps::MinmaxDistProgram mm_prog{&points, &tree, &mm_served};

    ServerOptions opt;
    opt.forced_width = tab->width;
    QueryServer server(opt);
    KernelOptions kopt;
    kopt.policy = {/*max_batch=*/32, /*max_wait_ns=*/200'000};
    const int k_knn = server.register_kernel(
        "knn", kopt, tb::serve::knn_pool_runner(pool, hopt, knn_prog));
    const int k_pc = server.register_kernel(
        "pointcorr", kopt,
        tb::serve::pointcorr_pool_runner(pool, hopt, pc_prog, pc_parts.data()));
    const int k_mm = server.register_kernel(
        "minmaxdist", kopt, tb::serve::minmaxdist_pool_runner(pool, hopt, mm_prog));
    ASSERT_EQ(&server.serving_table(k_knn), tab);
    ASSERT_EQ(&server.serving_table(k_pc), tab);
    ASSERT_EQ(&server.serving_table(k_mm), tab);
    EXPECT_EQ(server.serving_width(k_knn), tab->width);
    EXPECT_STREQ(server.serving_isa(k_knn), tab->name);

    server.start();
    std::size_t accepted = 0;
    for (std::int32_t i = 0; i < n; ++i) {
      if (server.submit(k_knn, i, tb::serve::now_ns())) ++accepted;
      if (server.submit(k_pc, i, tb::serve::now_ns())) ++accepted;
      if (server.submit(k_mm, i, tb::serve::now_ns())) ++accepted;
    }
    server.stop();

    EXPECT_EQ(accepted, 3 * kPoints);
    EXPECT_EQ(accepted,
              server.completed() + server.shed() + server.unserved_at_stop());
    EXPECT_EQ(server.completed(k_knn), kPoints);
    EXPECT_EQ(server.completed(k_pc), kPoints);
    EXPECT_EQ(server.completed(k_mm), kPoints);

    EXPECT_EQ(knn_digest(knn_served, kPoints), knn_want);
    std::uint64_t pc_total = 0;
    for (const auto& p : pc_parts) pc_total += p.value;
    EXPECT_EQ(pc_total, pc_want);
    EXPECT_EQ(tb::apps::minmaxdist_digest(mm_served), mm_want);
  }
}

// Satellite: forced-width validation happens at registration and a failed
// registration leaves the server untouched.
TEST(ServeDispatch, InvalidForcedWidthRejectedAtRegistration) {
  CountingRunner cr;
  QueryServer server(ServerOptions{});
  KernelOptions bad;
  bad.forced_width = 5;
  EXPECT_THROW(server.register_kernel("bad", bad, cr.runner()), std::invalid_argument);
  EXPECT_EQ(server.kernels(), 0u);  // no half-registered lane

  // Server-wide invalid width also surfaces at registration (that is where
  // resolution happens), not at construction.
  ServerOptions sopt;
  sopt.forced_width = 7;
  QueryServer server2(sopt);
  KernelOptions inherit;  // forced_width = 0 inherits the bad server width
  EXPECT_THROW(server2.register_kernel("k", inherit, cr.runner()), std::invalid_argument);

  // Valid width registers; per-kernel override beats the server-wide one.
  ServerOptions wide;
  wide.forced_width = tb::simd::kernels().width;
  QueryServer server3(wide);
  KernelOptions narrow;
  narrow.forced_width = 4;  // the sse2 table is always compiled and runnable
  const int k = server3.register_kernel("narrow", narrow, cr.runner());
  EXPECT_EQ(server3.serving_width(k), 4);
  const int kd = server3.register_kernel("inherit", inherit, cr.runner());
  EXPECT_EQ(server3.serving_width(kd), tb::simd::kernels().width);
}

// Satellite: forced widths select exactly the matching table when it is
// runnable and clamp down (TB_SIMD_ISA's clamp rule) when it is not —
// phrased host-independently so the same assertions hold on the sse-only
// CI leg where the AVX tables are compiled out.
TEST(ServeDispatch, ForcedWidthSelectsAndClampsLikeTbSimdIsa) {
  int count = 0;
  const tb::simd::KernelTable* const* tables = tb::simd::available_tables(count);
  ASSERT_GT(count, 0);
  for (int i = 0; i < count; ++i) {
    EXPECT_EQ(&tb::serve::resolve_serve_table(tables[i]->width), tables[i]);
  }
  // 16 is always a *valid* request; when the avx512 table is missing it
  // clamps to the widest runnable table (the last available_tables entry).
  EXPECT_EQ(&tb::serve::resolve_serve_table(16), tables[count - 1]);
  EXPECT_EQ(&tb::serve::resolve_serve_table(0), &tb::simd::kernels());
  EXPECT_THROW(tb::serve::resolve_serve_table(3), std::invalid_argument);
  EXPECT_THROW(tb::serve::resolve_serve_table(-4), std::invalid_argument);
  EXPECT_THROW(tb::serve::resolve_serve_table(32), std::invalid_argument);
}

TEST(ServeDispatch, ClampRuleIsPure) {
  using tb::serve::clamp_serve_width;
  const int all[] = {4, 8, 16};
  EXPECT_EQ(clamp_serve_width(16, all, 3), 16);
  EXPECT_EQ(clamp_serve_width(8, all, 3), 8);
  EXPECT_EQ(clamp_serve_width(4, all, 3), 4);
  const int sse_only[] = {4};
  EXPECT_EQ(clamp_serve_width(16, sse_only, 1), 4);
  EXPECT_EQ(clamp_serve_width(8, sse_only, 1), 4);
  const int no_avx512[] = {4, 8};
  EXPECT_EQ(clamp_serve_width(16, no_avx512, 2), 8);
  // Defensive floor: nothing at or below the request -> narrowest table.
  const int weird[] = {8, 16};
  EXPECT_EQ(clamp_serve_width(4, weird, 2), 8);
}

// Satellite: admission policy behavior (EDF arbitration, deadline shed,
// adaptive batch sizing) is a pure function of virtual time and must not
// depend on which table a lane is bound to.  Replays one scenario per
// runnable table and compares every observable against the width-0 run.
TEST(ServeDispatch, TableChoiceDoesNotAffectAdmissionPolicies) {
  struct Observed {
    std::vector<int> picks;
    std::size_t bulk_shed = 0;
    std::size_t slo_shed = 0;
    std::int64_t park_horizon = 0;
    std::size_t adaptive_batch = 0;
  };
  const auto replay = [](int forced_width) {
    const auto noop = [](const std::int32_t*, std::size_t) {};
    KernelRouter router;
    KernelOptions kopt;
    kopt.policy = {/*max_batch=*/4, /*max_wait_ns=*/1000};
    kopt.initial_service_estimate_ns = 100;
    kopt.forced_width = forced_width;
    KernelOptions aopt = kopt;
    aopt.adaptive.enabled = true;
    aopt.adaptive.max_batch = 64;
    aopt.adaptive.target_window_ns = 1000;
    const int bulk = router.add("bulk", kopt, noop);
    const int slo = router.add("slo", aopt, noop);

    Observed o;
    // Bulk: old arrival, no deadline.  SLO: newer arrival, 600 deadline,
    // plus one unmeetable deadline that must shed (service estimate 100).
    router.lane(bulk).admit(1, /*arrival=*/0, kNoDeadline, /*now=*/0);
    router.lane(slo).admit(2, /*arrival=*/50, /*deadline=*/600, /*now=*/50);
    router.lane(slo).admit(3, /*arrival=*/60, /*deadline=*/120, /*now=*/60);
    o.park_horizon = router.next_deadline_ns();
    Batch out;
    int k;
    while ((k = router.pick_ready(/*now=*/2000)) != -1) {
      o.picks.push_back(k);
      router.lane(k).batcher().pop_ready(2000, out);
      out.clear();
    }
    // Adaptive lane: steady 100 ns gaps derive the same policy everywhere.
    for (std::int64_t t = 3000; t <= 3500; t += 100) {
      router.lane(slo).admit(9, t, kNoDeadline, t);
    }
    o.adaptive_batch = router.lane(slo).batcher().policy().max_batch;
    o.bulk_shed = router.lane(bulk).shed();
    o.slo_shed = router.lane(slo).shed();
    return o;
  };

  const Observed want = replay(/*forced_width=*/0);
  EXPECT_EQ(want.slo_shed, 1u);  // the unmeetable deadline
  int count = 0;
  const tb::simd::KernelTable* const* tables = tb::simd::available_tables(count);
  for (int ti = 0; ti < count; ++ti) {
    SCOPED_TRACE(tables[ti]->name);
    const Observed got = replay(tables[ti]->width);
    EXPECT_EQ(got.picks, want.picks);
    EXPECT_EQ(got.bulk_shed, want.bulk_shed);
    EXPECT_EQ(got.slo_shed, want.slo_shed);
    EXPECT_EQ(got.park_horizon, want.park_horizon);
    EXPECT_EQ(got.adaptive_batch, want.adaptive_batch);
  }
}

}  // namespace
