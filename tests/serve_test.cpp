// Tests for the query-serving layer: MPMC queue semantics, the admission
// batcher's max-batch/max-wait policy in exact virtual time, latency
// percentile math, and the QueryServer end to end — including serving knn
// through the hybrid executor against the sequential oracle.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "apps/knn.hpp"
#include "lockstep/lockstep_knn.hpp"
#include "runtime/forkjoin.hpp"
#include "serve/batcher.hpp"
#include "serve/latency.hpp"
#include "serve/loadgen.hpp"
#include "serve/pool_runner.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "spatial/kdtree.hpp"

namespace {

using tb::serve::AdmissionBatcher;
using tb::serve::Batch;
using tb::serve::BatchPolicy;
using tb::serve::MpmcQueue;
using tb::serve::QueryServer;
using tb::serve::ServerOptions;

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpmcQueue<int>(1).capacity(), 8u);
  EXPECT_EQ(MpmcQueue<int>(8).capacity(), 8u);
  EXPECT_EQ(MpmcQueue<int>(9).capacity(), 16u);
  EXPECT_EQ(MpmcQueue<int>(1000).capacity(), 1024u);
}

TEST(MpmcQueue, FifoSingleThreaded) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  for (int i = 0; i < 5; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, FullAndEmptyAreDetected) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full
  EXPECT_EQ(q.size_approx(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_pop().has_value());
  EXPECT_FALSE(q.try_pop().has_value());  // empty
  EXPECT_EQ(q.size_approx(), 0u);
}

TEST(MpmcQueue, WrapsAroundManyGenerations) {
  MpmcQueue<int> q(8);
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.try_push(round * 6 + i));
    for (int i = 0; i < 6; ++i) {
      auto v = q.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, round * 6 + i);
    }
  }
}

// ---- AdmissionBatcher: pure virtual-time policy ---------------------------------

TEST(Batcher, SizeTriggerDispatchesExactlyMaxBatch) {
  AdmissionBatcher b({/*max_batch=*/4, /*max_wait_ns=*/1'000'000});
  for (std::int32_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(b.ready(/*now=*/i));  // not ready before the 4th arrival
    b.push(i, /*arrival=*/i);
  }
  EXPECT_TRUE(b.ready(/*now=*/3));  // full batch, no wait needed
  Batch out;
  ASSERT_TRUE(b.pop_ready(/*now=*/3, out));
  EXPECT_EQ(out.ids, (std::vector<std::int32_t>{0, 1, 2, 3}));
  EXPECT_EQ(out.arrival_ns, (std::vector<std::int64_t>{0, 1, 2, 3}));
  EXPECT_EQ(b.pending(), 0u);
}

TEST(Batcher, DeadlineTriggerFiresExactlyAtOldestPlusMaxWait) {
  AdmissionBatcher b({/*max_batch=*/4, /*max_wait_ns=*/1000});
  b.push(7, /*arrival=*/100);
  b.push(8, /*arrival=*/500);
  EXPECT_EQ(b.next_deadline_ns(), 1100);  // oldest arrival + max_wait
  EXPECT_FALSE(b.ready(1099));
  EXPECT_TRUE(b.ready(1100));  // boundary is inclusive
  Batch out;
  ASSERT_TRUE(b.pop_ready(1100, out));
  EXPECT_EQ(out.ids, (std::vector<std::int32_t>{7, 8}));
}

TEST(Batcher, ZeroMaxWaitServesImmediately) {
  AdmissionBatcher b({/*max_batch=*/64, /*max_wait_ns=*/0});
  b.push(1, 10);
  EXPECT_TRUE(b.ready(10));  // ready the instant it arrives
  Batch out;
  ASSERT_TRUE(b.pop_ready(10, out));
  EXPECT_EQ(out.size(), 1u);
}

TEST(Batcher, RemainderKeepsItsOwnDeadline) {
  AdmissionBatcher b({/*max_batch=*/4, /*max_wait_ns=*/1000});
  for (std::int32_t i = 0; i < 7; ++i) b.push(i, /*arrival=*/100 + i);
  Batch out;
  ASSERT_TRUE(b.pop_ready(/*now=*/106, out));  // size trigger: first 4
  EXPECT_EQ(out.ids, (std::vector<std::int32_t>{0, 1, 2, 3}));
  out.clear();
  // Three left — below max_batch, so they wait for the 5th arrival's
  // deadline (arrival 104 + 1000).
  EXPECT_EQ(b.pending(), 3u);
  EXPECT_EQ(b.next_deadline_ns(), 1104);
  EXPECT_FALSE(b.pop_ready(1103, out));
  ASSERT_TRUE(b.pop_ready(1104, out));
  EXPECT_EQ(out.ids, (std::vector<std::int32_t>{4, 5, 6}));
}

TEST(Batcher, NextDeadlineSentinelWhenEmpty) {
  AdmissionBatcher b({4, 1000});
  EXPECT_EQ(b.next_deadline_ns(), tb::serve::kNoDeadline);
  b.push(0, 50);
  EXPECT_EQ(b.next_deadline_ns(), 1050);
  Batch out;
  ASSERT_TRUE(b.flush(out));
  EXPECT_EQ(b.next_deadline_ns(), tb::serve::kNoDeadline);
}

TEST(Batcher, FlushDrainsWithoutDeadline) {
  AdmissionBatcher b({/*max_batch=*/4, /*max_wait_ns=*/1'000'000'000});
  for (std::int32_t i = 0; i < 6; ++i) b.push(i, i);
  Batch out;
  EXPECT_TRUE(b.flush(out));  // 4 (max_batch)
  EXPECT_EQ(out.size(), 4u);
  out.clear();
  EXPECT_TRUE(b.flush(out));  // remaining 2
  EXPECT_EQ(out.size(), 2u);
  out.clear();
  EXPECT_FALSE(b.flush(out));
}

// ---- latency percentiles --------------------------------------------------------

TEST(Latency, NearestRankPercentiles) {
  std::vector<double> samples;
  for (int i = 1000; i >= 1; --i) samples.push_back(static_cast<double>(i));
  const auto s = tb::serve::summarize_latencies(samples);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.p50, 500.0);   // rank ceil(0.5*1000)=500
  EXPECT_DOUBLE_EQ(s.p99, 990.0);   // rank 990
  EXPECT_DOUBLE_EQ(s.p999, 999.0);  // rank 999
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  EXPECT_DOUBLE_EQ(s.mean, 500.5);
}

TEST(Latency, EmptyAndSingleton) {
  std::vector<double> none;
  EXPECT_EQ(tb::serve::summarize_latencies(none).count, 0u);
  std::vector<double> one{3.5};
  const auto s = tb::serve::summarize_latencies(one);
  EXPECT_DOUBLE_EQ(s.p50, 3.5);
  EXPECT_DOUBLE_EQ(s.p999, 3.5);
}

// ---- QueryServer end to end ------------------------------------------------------

// A runner that records every id it sees (admission thread only — the
// mutex guards against nothing yet documents the contract for readers).
struct CountingRunner {
  std::mutex mu;
  std::vector<std::int32_t> seen;
  std::vector<std::size_t> batch_sizes;

  QueryServer::BatchRunner runner() {
    return [this](const std::int32_t* ids, std::size_t count) {
      const std::lock_guard<std::mutex> lock(mu);
      seen.insert(seen.end(), ids, ids + count);
      batch_sizes.push_back(count);
    };
  }
};

TEST(QueryServer, ServesEveryQueryExactlyOnce) {
  CountingRunner cr;
  ServerOptions opt;
  opt.policy = {/*max_batch=*/8, /*max_wait_ns=*/100'000};
  QueryServer server(opt, cr.runner());
  server.start();
  constexpr std::int32_t kN = 500;
  for (std::int32_t i = 0; i < kN; ++i) server.submit(i, tb::serve::now_ns());
  server.stop();

  EXPECT_EQ(server.completed(), static_cast<std::size_t>(kN));
  EXPECT_EQ(server.latencies_s().size(), static_cast<std::size_t>(kN));
  std::vector<int> times(kN, 0);
  for (const std::int32_t id : cr.seen) times[static_cast<std::size_t>(id)]++;
  for (std::int32_t i = 0; i < kN; ++i) EXPECT_EQ(times[static_cast<std::size_t>(i)], 1);
  for (const std::size_t s : cr.batch_sizes) EXPECT_LE(s, 8u);
  EXPECT_EQ(server.batches_dispatched(), cr.batch_sizes.size());
  EXPECT_GE(server.max_batch_seen(), 1u);
}

TEST(QueryServer, StopDrainsPendingPartialBatch) {
  CountingRunner cr;
  ServerOptions opt;
  // Huge max_wait: without the shutdown flush these would never dispatch.
  opt.policy = {/*max_batch=*/64, /*max_wait_ns=*/std::int64_t{3600} * 1'000'000'000};
  QueryServer server(opt, cr.runner());
  server.start();
  for (std::int32_t i = 0; i < 10; ++i) server.submit(i, tb::serve::now_ns());
  server.stop();
  EXPECT_EQ(server.completed(), 10u);
}

TEST(QueryServer, LoadGeneratorOffersAllQueries) {
  CountingRunner cr;
  ServerOptions opt;
  opt.policy = {/*max_batch=*/16, /*max_wait_ns=*/200'000};
  QueryServer server(opt, cr.runner());
  server.start();
  tb::serve::LoadGenOptions lg;
  lg.rate_qps = 50000.0;  // brief open-loop burst
  lg.total = 300;
  lg.id_space = 100;
  tb::serve::generate_load(server, lg);
  server.stop();
  EXPECT_EQ(server.completed(), 300u);
  const auto s = tb::serve::summarize_latencies(server.latencies_s());
  EXPECT_EQ(s.count, 300u);
  EXPECT_GT(s.p50, 0.0);
  EXPECT_GE(s.p999, s.p50);
}

// Serving knn through the hybrid executor must reproduce the sequential
// oracle exactly: round-robin load serves each query id exactly once, so
// the per-query k-best lists match knn_sequential's bit for bit.
TEST(QueryServer, KnnServeMatchesSequentialOracle) {
  constexpr std::size_t kPoints = 600;
  constexpr int kK = 4;
  const auto points = tb::spatial::Bodies::uniform_cube(kPoints);
  const auto tree = tb::spatial::KdTree::build(points, 16);

  tb::apps::KnnState oracle(kPoints, kK);
  {
    tb::apps::KnnProgram prog{&points, &tree, &oracle};
    tb::apps::knn_sequential(prog);
  }

  tb::apps::KnnState served(kPoints, kK);
  tb::apps::KnnProgram prog{&points, &tree, &served};
  tb::rt::ForkJoinPool pool(2);
  tb::rt::HybridOptions hopt;
  hopt.t_reexp = 4 * static_cast<std::size_t>(tb::apps::KnnProgram::simd_width);
  using Engine = tb::lockstep::BlockedTraversal<tb::apps::KnnProgram::simd_width>;
  auto runner = tb::serve::make_pool_runner<Engine>(
      pool, hopt,
      [&prog, &tree](const std::int32_t* ids, std::size_t count, Engine& engine) {
        tb::lockstep::blocked_knn_frame(prog, tree.root, ids, count, engine);
      });

  ServerOptions opt;
  opt.policy = {/*max_batch=*/32, /*max_wait_ns=*/200'000};
  QueryServer server(opt, std::move(runner));
  server.start();
  tb::serve::LoadGenOptions lg;
  lg.rate_qps = 0.0;  // closed loop
  lg.total = kPoints;
  lg.id_space = static_cast<std::int32_t>(kPoints);
  lg.round_robin = true;  // each id exactly once — duplicates would corrupt k-best
  tb::serve::generate_load(server, lg);
  server.stop();

  EXPECT_EQ(server.completed(), kPoints);
  for (std::int32_t q = 0; q < static_cast<std::int32_t>(kPoints); ++q) {
    const auto want = oracle.distances(q);
    const auto got = served.distances(q);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_FLOAT_EQ(want[j], got[j]) << "query " << q << " neighbor " << j;
    }
  }
}

}  // namespace
