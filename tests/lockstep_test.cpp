// Tests for the lockstep (data-parallel-only) traversal baseline: exact
// agreement with the recursive formulations where the model guarantees it
// (point-correlation counts, k-NN result lists, Barnes-Hut interaction
// fingerprints), force agreement within reassociation tolerance, engine
// statistics, and the divergence behaviour the paper's schedulers remove.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "apps/barneshut.hpp"
#include "apps/knn.hpp"
#include "apps/pointcorr.hpp"
#include "lockstep/lockstep.hpp"
#include "lockstep/lockstep_barneshut.hpp"
#include "lockstep/lockstep_knn.hpp"
#include "lockstep/lockstep_pointcorr.hpp"
#include "spatial/bodies.hpp"
#include "spatial/kdtree.hpp"
#include "spatial/octree.hpp"

namespace {

using namespace tb;
using lockstep::LockstepStats;

// ---- engine -------------------------------------------------------------------------

TEST(LockstepEngine, VisitsEveryNodeOnceWithFullMask) {
  // A 3-level perfect binary tree, encoded inline; visitor never prunes.
  // Nodes 0..6; children of v are 2v+1, 2v+2 for v < 3.
  std::vector<std::int32_t> visited;
  lockstep::traverse<4>(
      0, 0xF,
      [](std::int32_t node, std::int32_t* out) {
        if (node >= 3) return 0;
        out[0] = 2 * node + 1;
        out[1] = 2 * node + 2;
        return 2;
      },
      [&](std::int32_t node, std::uint32_t mask) -> std::uint32_t {
        visited.push_back(node);
        EXPECT_EQ(mask, 0xFu);
        return mask;
      });
  EXPECT_EQ(visited.size(), 7u);
  // Depth-first, left child first.
  EXPECT_EQ(visited[0], 0);
  EXPECT_EQ(visited[1], 1);
  EXPECT_EQ(visited[2], 3);
}

TEST(LockstepEngine, ZeroMaskPrunesSubtree) {
  std::vector<std::int32_t> visited;
  lockstep::traverse<4>(
      0, 0xF,
      [](std::int32_t node, std::int32_t* out) {
        if (node >= 3) return 0;
        out[0] = 2 * node + 1;
        out[1] = 2 * node + 2;
        return 2;
      },
      [&](std::int32_t node, std::uint32_t mask) -> std::uint32_t {
        visited.push_back(node);
        return node == 1 ? 0u : mask;  // kill the left subtree below node 1
      });
  // Node 1's children (3, 4) are never visited: 0,1,2,5,6.
  EXPECT_EQ(visited.size(), 5u);
}

TEST(LockstepEngine, StatsCountLaneOccupancy) {
  LockstepStats st;
  lockstep::traverse<4>(
      0, 0x3,  // only 2 of 4 lanes live
      [](std::int32_t, std::int32_t*) { return 0; },
      [&](std::int32_t, std::uint32_t mask) -> std::uint32_t { return mask; }, &st);
  EXPECT_EQ(st.node_visits, 1u);
  EXPECT_EQ(st.lane_visits, 4u);
  EXPECT_EQ(st.active_lane_visits, 2u);
  EXPECT_DOUBLE_EQ(st.occupancy(), 0.5);
}

TEST(LockstepEngine, PayloadThreadsDownTheTraversal) {
  // Chain 0 -> 1 -> 2; payload doubles per level.
  std::vector<int> payloads;
  lockstep::traverse<4, int>(
      0, 0xF, 1,
      [](std::int32_t node, std::int32_t* out) {
        if (node >= 2) return 0;
        out[0] = node + 1;
        return 1;
      },
      [&](std::int32_t, std::uint32_t mask, int payload) {
        payloads.push_back(payload);
        return std::pair{mask, payload * 2};
      });
  EXPECT_EQ(payloads, (std::vector<int>{1, 2, 4}));
}

// ---- point correlation ----------------------------------------------------------------

class LockstepPointCorr : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LockstepPointCorr, CountMatchesRecursiveTraversal) {
  const std::size_t n = GetParam();
  const auto pts = spatial::Bodies::uniform_cube(n, /*seed=*/11);
  const auto tree = spatial::KdTree::build(pts, 16);
  const apps::PointCorrProgram prog{&pts, &tree, 0.03f};
  LockstepStats st;
  EXPECT_EQ(lockstep::lockstep_pointcorr(prog, &st), apps::pointcorr_sequential(prog));
  EXPECT_GT(st.node_visits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LockstepPointCorr,
                         ::testing::Values(1u, 7u, 64u, 500u, 3000u),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(LockstepPointCorrDetail, DivergenceShowsUpInOccupancy) {
  // Uniform points with a small radius: lanes prune different subtrees, so
  // occupancy sits strictly between the degenerate extremes.
  const auto pts = spatial::Bodies::uniform_cube(4000, 5);
  const auto tree = spatial::KdTree::build(pts, 16);
  const apps::PointCorrProgram prog{&pts, &tree, 0.01f};
  LockstepStats st;
  (void)lockstep::lockstep_pointcorr(prog, &st);
  EXPECT_GT(st.occupancy(), 0.05);
  EXPECT_LT(st.occupancy(), 0.95);
}

// ---- knn ----------------------------------------------------------------------------

class LockstepKnn : public ::testing::TestWithParam<int> {};

TEST_P(LockstepKnn, NeighborListsMatchRecursiveTraversal) {
  const int k = GetParam();
  const auto pts = spatial::Bodies::uniform_cube(1500, 23);
  const auto tree = spatial::KdTree::build(pts, 16);

  apps::KnnState seq_state(pts.size(), k);
  apps::KnnProgram seq_prog{&pts, &tree, &seq_state};
  apps::knn_sequential(seq_prog);

  apps::KnnState ls_state(pts.size(), k);
  apps::KnnProgram ls_prog{&pts, &tree, &ls_state};
  lockstep::lockstep_knn(ls_prog);

  for (std::int32_t q = 0; q < static_cast<std::int32_t>(pts.size()); ++q) {
    const auto ls = ls_state.distances(q);
    const auto seq = seq_state.distances(q);
    ASSERT_EQ(ls.size(), seq.size()) << "query " << q;
    for (std::size_t i = 0; i < ls.size(); ++i) {
      // The lockstep kernel accumulates the same distances through a
      // different float evaluation order (and FMA contraction under
      // -march=native), so the lists match to ULPs, not bit-exactly.
      EXPECT_FLOAT_EQ(ls[i], seq[i]) << "query " << q << " slot " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, LockstepKnn, ::testing::Values(1, 4, 8),
                         [](const auto& info) { return "k" + std::to_string(info.param); });

TEST(LockstepKnnDetail, MatchesBruteForce) {
  const auto pts = spatial::Bodies::uniform_cube(400, 31);
  const auto tree = spatial::KdTree::build(pts, 8);
  apps::KnnState state(pts.size(), 4);
  apps::KnnProgram prog{&pts, &tree, &state};
  lockstep::lockstep_knn(prog);
  for (const std::int32_t q : {0, 57, 233, 399}) {
    const auto expect = apps::knn_bruteforce(pts, q, 4);
    const auto got = state.distances(q);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_FLOAT_EQ(got[i], expect[i]) << "query " << q << " rank " << i;
    }
  }
}

// ---- barnes-hut -----------------------------------------------------------------------

TEST(LockstepBarnesHut, InteractionFingerprintMatchesRecursive) {
  const auto bodies = spatial::Bodies::plummer(3000, 17);
  const auto tree = spatial::Octree::build(bodies, 8);
  const float theta = 0.5f;

  std::vector<float> ax(bodies.size(), 0), ay(bodies.size(), 0), az(bodies.size(), 0);
  apps::BarnesHutProgram prog{&bodies, &tree, ax.data(), ay.data(), az.data()};
  const std::uint64_t seq_interactions = apps::barneshut_sequential(prog, theta);

  std::vector<float> lx(bodies.size(), 0), ly(bodies.size(), 0), lz(bodies.size(), 0);
  apps::BarnesHutProgram ls_prog{&bodies, &tree, lx.data(), ly.data(), lz.data()};
  LockstepStats st;
  const std::uint64_t ls_interactions = lockstep::lockstep_barneshut(ls_prog, theta, &st);

  EXPECT_EQ(ls_interactions, seq_interactions);
  EXPECT_GT(st.node_visits, 0u);

  // Forces agree to reassociation tolerance.
  double max_rel = 0;
  for (std::size_t b = 0; b < bodies.size(); ++b) {
    const double mag = std::sqrt(static_cast<double>(ax[b]) * ax[b] +
                                 static_cast<double>(ay[b]) * ay[b] +
                                 static_cast<double>(az[b]) * az[b]);
    const double dx = static_cast<double>(lx[b]) - ax[b];
    const double dy = static_cast<double>(ly[b]) - ay[b];
    const double dz = static_cast<double>(lz[b]) - az[b];
    const double diff = std::sqrt(dx * dx + dy * dy + dz * dz);
    if (mag > 1e-6) max_rel = std::max(max_rel, diff / mag);
  }
  EXPECT_LT(max_rel, 1e-3);
}

TEST(LockstepBarnesHut, TighterThetaMeansMoreInteractions) {
  const auto bodies = spatial::Bodies::plummer(1200, 3);
  const auto tree = spatial::Octree::build(bodies, 8);
  std::vector<float> ax(bodies.size(), 0), ay(bodies.size(), 0), az(bodies.size(), 0);
  apps::BarnesHutProgram prog{&bodies, &tree, ax.data(), ay.data(), az.data()};
  const auto loose = lockstep::lockstep_barneshut(prog, 0.8f);
  const auto tight = lockstep::lockstep_barneshut(prog, 0.3f);
  EXPECT_GT(tight, loose);
}

TEST(LockstepBarnesHut, SingleStrapOfBodies) {
  // Fewer bodies than the SIMD width: exercises the partial-lane path.
  const auto bodies = spatial::Bodies::plummer(3, 9);
  const auto tree = spatial::Octree::build(bodies, 4);
  std::vector<float> ax(3, 0), ay(3, 0), az(3, 0);
  apps::BarnesHutProgram prog{&bodies, &tree, ax.data(), ay.data(), az.data()};
  const std::uint64_t seq = apps::barneshut_sequential(prog, 0.5f);
  std::fill(ax.begin(), ax.end(), 0.0f);
  std::fill(ay.begin(), ay.end(), 0.0f);
  std::fill(az.begin(), az.end(), 0.0f);
  EXPECT_EQ(lockstep::lockstep_barneshut(prog, 0.5f), seq);
}

}  // namespace
