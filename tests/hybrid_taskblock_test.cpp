// Task-block hybrid path tests (core/hybrid_taskblock.hpp): breadth-first
// frontier expansion semantics, and result-equivalence of the strip-mined
// uts/nqueens hybrid runs against the sequential recursion oracle over the
// full workers × threshold × partition × donation matrix
// (tests/support/harness.hpp::hybrid_cases — t_reexp/donation are traversal
// concepts the task-block path must ignore gracefully).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "apps/nqueens.hpp"
#include "apps/uts.hpp"
#include "core/hybrid_taskblock.hpp"
#include "tests/support/harness.hpp"

namespace {

using namespace tb;

// ---- frontier expansion -------------------------------------------------------------

TEST(ExpandFrontier, AmplifiesSingleRootToRequestedSize) {
  const apps::NQueensProgram prog{8};
  const std::vector roots{apps::NQueensProgram::root()};
  apps::NQueensProgram::Result partial = apps::NQueensProgram::identity();
  const auto frontier = core::expand_frontier(prog, roots, 20, partial);
  EXPECT_GE(frontier.size(), 20u);
  EXPECT_EQ(partial, 0u);  // no leaves in the first rows of an 8-queens board
  // Levels expand whole: every frontier task has the same number of queens.
  const int placed = std::popcount(frontier.front().cols);
  for (const auto& t : frontier) EXPECT_EQ(std::popcount(t.cols), placed);
}

TEST(ExpandFrontier, SmallEnoughRootSetIsReturnedUnchanged) {
  const apps::UtsProgram prog(apps::UtsParams{16, 4, 0.2, 19});
  const auto roots = prog.roots();
  apps::UtsProgram::Result partial = apps::UtsProgram::identity();
  const auto frontier = core::expand_frontier(
      prog, std::span<const apps::UtsProgram::Task>(roots), roots.size(), partial);
  EXPECT_EQ(frontier.size(), roots.size());
  EXPECT_EQ(partial, 0u);
}

TEST(ExpandFrontier, ExhaustedTreeMovesEverythingToPartial) {
  // q = 0 makes every root a leaf: asking for more tasks than exist drains
  // the whole tree into `partial` and returns an empty frontier.
  const apps::UtsProgram prog(apps::UtsParams{32, 4, 0.0, 19});
  const auto roots = prog.roots();
  apps::UtsProgram::Result partial = apps::UtsProgram::identity();
  const auto frontier = core::expand_frontier(
      prog, std::span<const apps::UtsProgram::Task>(roots), 1000, partial);
  EXPECT_TRUE(frontier.empty());
  EXPECT_EQ(partial, 32u);
  EXPECT_EQ(partial, apps::uts_sequential_all(prog));
}

// ---- uts / nqueens hybrid equivalence -----------------------------------------------

TEST(HybridTaskblock, UtsMatchesSequentialAcrossMatrix) {
  const apps::UtsProgram prog(apps::UtsParams{64, 4, 0.22, 19});
  const std::uint64_t expected = apps::uts_sequential_all(prog);
  const auto th = core::Thresholds::for_block_size(prog.simd_width, 512, 64);
  tbtest::for_each_hybrid_case([&](rt::ForkJoinPool& pool, const tbtest::HybridCase& c) {
    EXPECT_EQ(apps::uts_hybrid(pool, prog, th, c.options()), expected);
  });
}

TEST(HybridTaskblock, NQueensMatchesSequentialAcrossMatrix) {
  const apps::NQueensProgram prog{9};
  const std::uint64_t expected = apps::nqueens_sequential(9, 0, 0, 0);
  const auto th = core::Thresholds::for_block_size(prog.simd_width, 256, 32);
  tbtest::for_each_hybrid_case([&](rt::ForkJoinPool& pool, const tbtest::HybridCase& c) {
    EXPECT_EQ(apps::nqueens_hybrid(pool, prog, th, c.options()), expected);
  });
}

TEST(HybridTaskblock, ThresholdPresetsDoNotChangeResults) {
  const apps::UtsProgram prog(apps::UtsParams{64, 4, 0.22, 19});
  const std::uint64_t expected = apps::uts_sequential_all(prog);
  rt::ForkJoinPool pool(4);
  for (const auto& th : tbtest::threshold_presets()) {
    SCOPED_TRACE(tbtest::threshold_name(th));
    EXPECT_EQ(apps::uts_hybrid(pool, prog, th, {}), expected);
  }
}

// ---- per-slot stats -----------------------------------------------------------------

TEST(HybridTaskblock, PerWorkerStatsCoverSlots) {
  const apps::NQueensProgram prog{9};
  const auto th = core::Thresholds::for_block_size(prog.simd_width, 256, 32);
  rt::ForkJoinPool pool(4);
  core::PerWorkerStats pw;
  (void)apps::nqueens_hybrid(pool, prog, th, {}, &pw);
  EXPECT_EQ(pw.slots(), 4u);
  EXPECT_GT(pw.merged().tasks_executed, 0u);
  for (const auto& w : pw.workers) {
    EXPECT_GE(w.simd_utilization(), 0.0);
    EXPECT_LE(w.simd_utilization(), 1.0);
  }
}

TEST(HybridTaskblock, StaticPartitionStatsAreDeterministic) {
  const apps::UtsProgram prog(apps::UtsParams{64, 4, 0.22, 19});
  const auto th = core::Thresholds::for_block_size(prog.simd_width, 512, 64);
  rt::ForkJoinPool pool(3);
  rt::HybridOptions opt;
  opt.static_partition = true;
  core::PerWorkerStats a, b;
  (void)apps::uts_hybrid(pool, prog, th, opt, &a);
  (void)apps::uts_hybrid(pool, prog, th, opt, &b);
  ASSERT_EQ(a.slots(), b.slots());
  for (std::size_t s = 0; s < a.slots(); ++s) {
    EXPECT_EQ(a.workers[s].steps_total, b.workers[s].steps_total) << "slot " << s;
    EXPECT_EQ(a.workers[s].tasks_executed, b.workers[s].tasks_executed) << "slot " << s;
  }
}

}  // namespace
