// Integration tests over the benchmark-suite wrappers (bench/suite.hpp) —
// the exact code paths the table/figure harnesses run.  Every benchmark at
// "test" scale must produce the sequential oracle's digest through every
// scheduler configuration: policies × layers × sequential/pool/ideal, plus
// census consistency and threshold defaults.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/suite.hpp"
#include "tests/support/harness.hpp"

namespace {

using tbench::BlockedConfig;
using tbench::IBench;
using tbench::Layer;

std::vector<std::unique_ptr<IBench>>& suite() {
  static auto s = tbench::make_suite("test");
  return s;
}

// Index-based parameterization keeps gtest names stable.
class SuiteDigest : public ::testing::TestWithParam<int> {};

TEST_P(SuiteDigest, AllSequentialConfigsMatchOracle) {
  IBench& b = *suite()[static_cast<std::size_t>(GetParam())];
  const std::string expected = b.run_sequential();
  for (const auto policy : tbtest::kPolicies) {
    for (const auto layer : {Layer::Aos, Layer::Soa, Layer::Simd}) {
      BlockedConfig cfg;
      cfg.policy = policy;
      cfg.layer = layer;
      cfg.th = b.thresholds();
      EXPECT_EQ(b.run_blocked(cfg), expected)
          << tb::core::to_string(policy) << "/" << tbench::to_string(layer);
    }
  }
}

TEST_P(SuiteDigest, PoolAndIdealConfigsMatchOracle) {
  IBench& b = *suite()[static_cast<std::size_t>(GetParam())];
  const std::string expected = b.run_sequential();
  tb::rt::ForkJoinPool pool(3);
  for (const auto policy : {tb::core::SeqPolicy::Reexp, tb::core::SeqPolicy::Restart}) {
    BlockedConfig cfg;
    cfg.policy = policy;
    cfg.layer = Layer::Simd;
    cfg.pool = &pool;
    cfg.th = b.thresholds();
    EXPECT_EQ(b.run_blocked(cfg), expected) << "pool/" << tb::core::to_string(policy);
  }
  BlockedConfig ideal;
  ideal.ideal_workers = 3;
  ideal.layer = Layer::Simd;
  ideal.th = b.thresholds();
  EXPECT_EQ(b.run_blocked(ideal), expected) << "ideal";
  EXPECT_EQ(b.run_cilk(pool), expected) << "cilk";
  if (b.has_hybrid()) {
    tb::rt::HybridOptions opt;
    opt.t_reexp = b.default_hybrid_reexp();
    for (const int lanes : {0, 4}) {
      EXPECT_EQ(b.run_hybrid(pool, opt, nullptr, lanes), expected)
          << "hybrid lanes=" << lanes;
      opt.static_partition = true;
      EXPECT_EQ(b.run_hybrid(pool, opt, nullptr, lanes), expected)
          << "hybrid static lanes=" << lanes;
      opt.static_partition = false;
    }
  }
}

TEST_P(SuiteDigest, CensusAgreesWithScheduledStats) {
  IBench& b = *suite()[static_cast<std::size_t>(GetParam())];
  if (b.name() == "knn" || b.name() == "minmaxdist") {
    // Traversal counts with shared shrinking/growing bounds are
    // schedule-dependent; the digest tests cover correctness instead.
    GTEST_SKIP();
  }
  const auto info = b.census();
  BlockedConfig cfg;
  cfg.th = b.thresholds();
  tb::core::ExecStats st;
  (void)b.run_blocked(cfg, &st);
  EXPECT_EQ(st.tasks_executed, info.tasks);
  EXPECT_EQ(st.leaves, info.leaves);
}

TEST_P(SuiteDigest, DefaultsAreSane) {
  IBench& b = *suite()[static_cast<std::size_t>(GetParam())];
  EXPECT_GT(b.q(), 0);
  EXPECT_GE(b.default_block(), static_cast<std::size_t>(b.q()));
  EXPECT_LE(b.default_restart(), b.default_block());
  EXPECT_FALSE(b.problem().empty());
  const auto th = b.thresholds();
  EXPECT_EQ(th.t_dfe, b.default_block());
  EXPECT_EQ(th.t_restart, b.default_restart());
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteDigest, ::testing::Range(0, 12),
                         [](const auto& info) {
                           return suite()[static_cast<std::size_t>(info.param)]->name();
                         });

TEST(SuiteFactory, ScalesProduceTwelveBenchmarks) {
  for (const char* scale : {"test", "default"}) {
    const auto s = tbench::make_suite(scale);
    EXPECT_EQ(s.size(), 12u) << scale;
  }
}

TEST(SuiteFactory, SelectedFilterMatchesNamesExactly) {
  EXPECT_TRUE(tbench::selected("", "fib"));
  EXPECT_TRUE(tbench::selected("fib,uts", "uts"));
  EXPECT_FALSE(tbench::selected("fib,uts", "ut"));
  EXPECT_FALSE(tbench::selected("fib", "fibx"));
}

}  // namespace
