// Hybrid vector×multicore executor tests: the blocked re-expansion
// traversal engine (lockstep/blocked.hpp) on synthetic trees — frame-stack
// behaviour, streaming-compaction edge cases, lane masks, the re-expansion
// threshold, step accounting — and result-equivalence of the hybrid
// executor against the sequential task-block scheduler oracle for every
// ported app across the W∈{4,8} × workers∈{1,2,4} × threshold × partition
// matrix (tests/support/harness.hpp::hybrid_cases).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "apps/barneshut.hpp"
#include "apps/knn.hpp"
#include "apps/minmaxdist.hpp"
#include "apps/pointcorr.hpp"
#include "core/driver.hpp"
#include "lockstep/blocked.hpp"
#include "lockstep/lockstep_barneshut.hpp"
#include "lockstep/lockstep_knn.hpp"
#include "lockstep/lockstep_minmax.hpp"
#include "lockstep/lockstep_pointcorr.hpp"
#include "spatial/bodies.hpp"
#include "spatial/kdtree.hpp"
#include "spatial/octree.hpp"
#include "tests/support/harness.hpp"

namespace {

using namespace tb;
using lockstep::BlockedTraversal;

// ---- engine: synthetic trees --------------------------------------------------------

// 3-level perfect binary tree, nodes 0..6; children of v are 2v+1, 2v+2.
int perfect_children(std::int32_t node, std::int32_t* out) {
  if (node >= 3) return 0;
  out[0] = 2 * node + 1;
  out[1] = 2 * node + 2;
  return 2;
}

// Collects, per (node, query), how often the step callback saw the pair.
template <int W>
std::map<std::pair<std::int32_t, std::int32_t>, int> visit_matrix(
    std::int32_t n_queries, std::size_t t_reexp,
    std::uint32_t (*prune)(std::int32_t node, std::int32_t query),
    core::ExecStats* st = nullptr) {
  std::map<std::pair<std::int32_t, std::int32_t>, int> seen;
  BlockedTraversal<W> eng(t_reexp);
  eng.run(
      0, char{0}, 0, n_queries, perfect_children,
      [&](std::int32_t node, const simd::batch<std::int32_t, W>& qid, std::uint32_t mask,
          char) -> std::uint32_t {
        std::uint32_t live = 0;
        for (int l = 0; l < W; ++l) {
          if (((mask >> l) & 1u) == 0) continue;
          seen[{node, qid[l]}] += 1;
          live |= prune(node, qid[l]) << l;
        }
        return live & mask;
      },
      [](char p) { return p; }, st);
  return seen;
}

std::uint32_t keep_all(std::int32_t, std::int32_t) { return 1u; }

// Query q descends only while node < q (lanes die at different depths).
std::uint32_t staggered(std::int32_t node, std::int32_t query) {
  return node < query ? 1u : 0u;
}

TEST(BlockedEngine, VisitsEveryNodeQueryPairOnce) {
  // 10 queries, W=4: tail chunk exercises the partial-lane mask.
  const auto seen = visit_matrix<4>(10, /*t_reexp=*/0, keep_all);
  EXPECT_EQ(seen.size(), 7u * 10u);
  for (const auto& [key, count] : seen) EXPECT_EQ(count, 1) << key.first << "," << key.second;
}

TEST(BlockedEngine, MaskedModeVisitsTheSamePairs) {
  // A threshold above the query count forces classic masked-lockstep mode
  // from the root: the visit sets must be identical.
  const auto blocked = visit_matrix<4>(10, 0, staggered);
  const auto masked = visit_matrix<4>(10, 1u << 20, staggered);
  EXPECT_EQ(blocked, masked);
}

TEST(BlockedEngine, CompactionDropsDeadLanesFromChildFrames) {
  // With the staggered prune, node n is visited exactly by queries > n (and
  // every query visits the root).
  const auto seen = visit_matrix<8>(10, 0, staggered);
  for (std::int32_t node = 0; node < 7; ++node) {
    for (std::int32_t q = 0; q < 10; ++q) {
      const bool reachable = node == 0 || [&] {
        // q must have descended along the root-to-node path.
        std::int32_t v = node;
        std::vector<std::int32_t> path;
        while (v != 0) {
          v = (v - 1) / 2;
          path.push_back(v);
        }
        return std::all_of(path.begin(), path.end(),
                           [&](std::int32_t a) { return a < q; });
      }();
      EXPECT_EQ(seen.count({node, q}), reachable ? 1u : 0u)
          << "node " << node << " query " << q;
    }
  }
}

TEST(BlockedEngine, EmptyAndSingleQuerySets) {
  const auto none = visit_matrix<4>(0, 0, keep_all);
  EXPECT_TRUE(none.empty());
  const auto one = visit_matrix<4>(1, 0, keep_all);
  EXPECT_EQ(one.size(), 7u);
}

TEST(BlockedEngine, StepAccountingFullBlocks) {
  // 16 queries on W=8, never pruning: every frame is a full block, so every
  // step is complete and utilization is 1.0.
  core::ExecStats st;
  (void)visit_matrix<8>(16, 0, keep_all, &st);
  EXPECT_EQ(st.supersteps, 7u);                 // one blocked frame per node
  EXPECT_EQ(st.steps_total, 7u * 2u);           // 16 queries = 2 steps each
  EXPECT_EQ(st.steps_complete, st.steps_total);
  EXPECT_EQ(st.tasks_executed, 7u * 16u);
  EXPECT_DOUBLE_EQ(st.simd_utilization(), 1.0);
}

TEST(BlockedEngine, PartialTailLowersUtilization) {
  // 9 queries on W=8: each frame is one complete + one 1-lane step.
  core::ExecStats st;
  (void)visit_matrix<8>(9, 0, keep_all, &st);
  EXPECT_EQ(st.steps_total, 7u * 2u);
  EXPECT_EQ(st.steps_complete, 7u * 1u);
  EXPECT_DOUBLE_EQ(st.simd_utilization(), 0.5);
}

TEST(BlockedEngine, PayloadThreadsDownLevels) {
  // Chain 0 -> 1 -> 2; payload doubles per level.
  std::vector<int> payloads;
  BlockedTraversal<4, int> eng(0);
  eng.run(
      0, 1, 0, 4,
      [](std::int32_t node, std::int32_t* out) {
        if (node >= 2) return 0;
        out[0] = node + 1;
        return 1;
      },
      [&](std::int32_t, const simd::batch<std::int32_t, 4>&, std::uint32_t mask,
          int payload) {
        payloads.push_back(payload);
        return mask;
      },
      [](int p) { return p * 2; });
  EXPECT_EQ(payloads, (std::vector<int>{1, 2, 4}));
}

TEST(BlockedEngine, EngineReuseAcrossRunsIsClean) {
  BlockedTraversal<4> eng(0);
  for (int rep = 0; rep < 3; ++rep) {
    int visits = 0;
    eng.run(
        0, char{0}, 0, 10, perfect_children,
        [&](std::int32_t, const simd::batch<std::int32_t, 4>&, std::uint32_t mask, char) {
          visits += std::popcount(mask);
          return mask;
        },
        [](char p) { return p; });
    EXPECT_EQ(visits, 7 * 10);
  }
}

// ---- frame-level work donation ------------------------------------------------------

// Donor double that is always hungry and records every donated frame.
template <int W>
struct CollectingDonor final : BlockedTraversal<W>::Donor {
  std::vector<std::pair<std::int32_t, std::vector<std::int32_t>>> frames;
  bool hungry = true;
  bool want() override { return hungry; }
  void take(std::int32_t node, const char&, const std::int32_t* ids,
            std::size_t n) override {
    frames.emplace_back(node, std::vector<std::int32_t>(ids, ids + n));
  }
};

TEST(BlockedEngineDonation, SplitsBottomFrameAndPreservesCoverage) {
  // 10 queries on W=4 with min donatable block 2·W = 8: exactly the root
  // frame is donatable, so one donation fires (tail half, ids 5..9) and the
  // victim keeps 0..4.  Replaying the donated frame on a second engine must
  // restore exact once-per-(node, query) coverage.
  std::map<std::pair<std::int32_t, std::int32_t>, int> seen;
  const auto step = [&](std::int32_t node, const simd::batch<std::int32_t, 4>& qid,
                        std::uint32_t mask, char) -> std::uint32_t {
    for (int l = 0; l < 4; ++l) {
      if ((mask >> l) & 1u) seen[{node, qid[l]}] += 1;
    }
    return mask;
  };
  const auto keep = [](char p) { return p; };
  BlockedTraversal<4> victim(0);
  CollectingDonor<4> donor;
  victim.set_donor(&donor);
  core::ExecStats st;
  victim.run(0, char{0}, 0, 10, perfect_children, step, keep, &st);
  ASSERT_EQ(donor.frames.size(), 1u);
  EXPECT_EQ(st.donated_frames, 1u);
  EXPECT_EQ(donor.frames[0].first, 0);  // bottom frame: the root
  EXPECT_EQ(donor.frames[0].second, (std::vector<std::int32_t>{5, 6, 7, 8, 9}));
  BlockedTraversal<4> thief(0);
  for (const auto& [node, ids] : donor.frames) {
    thief.run_frame(node, char{0}, ids.data(), ids.size(), perfect_children, step, keep);
  }
  EXPECT_EQ(seen.size(), 7u * 10u);
  for (const auto& [key, count] : seen) {
    EXPECT_EQ(count, 1) << key.first << "," << key.second;
  }
}

TEST(BlockedEngineDonation, RespectsMinimumBlock) {
  // 4 queries < 2·W: nothing is donatable even with a permanently hungry
  // donor, and the run completes alone.
  int visits = 0;
  BlockedTraversal<4> eng(0);
  CollectingDonor<4> donor;
  eng.set_donor(&donor);
  eng.run(
      0, char{0}, 0, 4, perfect_children,
      [&](std::int32_t, const simd::batch<std::int32_t, 4>&, std::uint32_t mask, char) {
        visits += std::popcount(mask);
        return mask;
      },
      [](char p) { return p; });
  EXPECT_TRUE(donor.frames.empty());
  EXPECT_EQ(visits, 7 * 4);
}

TEST(BlockedEngineDonation, DegenerateClassicModeNeverDonates) {
  // t_reexp above the query count: every frame finishes in masked-lockstep
  // mode below the donation floor, so donation silently never fires.
  BlockedTraversal<4> eng(std::size_t{1} << 20);
  CollectingDonor<4> donor;
  eng.set_donor(&donor);
  int visits = 0;
  eng.run(
      0, char{0}, 0, 32, perfect_children,
      [&](std::int32_t, const simd::batch<std::int32_t, 4>&, std::uint32_t mask, char) {
        visits += std::popcount(mask);
        return mask;
      },
      [](char p) { return p; });
  EXPECT_TRUE(donor.frames.empty());
  EXPECT_EQ(visits, 7 * 32);
}

// ---- app equivalence matrix ---------------------------------------------------------

struct TraversalFixtures {
  spatial::Bodies pts = spatial::Bodies::uniform_cube(1500, 23);
  spatial::KdTree kdtree = spatial::KdTree::build(pts, 16);
  spatial::Bodies bodies = spatial::Bodies::plummer(1500, 17);
  spatial::Octree octree = spatial::Octree::build(bodies, 8);
};

TraversalFixtures& fixtures() {
  static TraversalFixtures f;
  return f;
}

template <int W>
void expect_pointcorr_matches_seq() {
  auto& f = fixtures();
  const apps::PointCorrProgram prog{&f.pts, &f.kdtree, 0.03f};
  const auto roots = prog.roots();
  const auto th = core::Thresholds::for_block_size(prog.simd_width, 512, 64);
  const std::uint64_t expected = core::run_seq<core::SimdExec<apps::PointCorrProgram>>(
      prog, roots, core::SeqPolicy::Restart, th);
  tbtest::for_each_hybrid_case([&](rt::ForkJoinPool& pool, const tbtest::HybridCase& c) {
    EXPECT_EQ(lockstep::hybrid_pointcorr<W>(pool, prog, c.options()), expected);
  });
}

TEST(HybridEquivalence, PointCorrW8) { expect_pointcorr_matches_seq<8>(); }
TEST(HybridEquivalence, PointCorrW4) { expect_pointcorr_matches_seq<4>(); }

template <int W>
void expect_knn_matches_seq() {
  auto& f = fixtures();
  const int k = 4;
  const auto digest = [&](const apps::KnnState& state) {
    std::vector<float> all;
    for (std::int32_t q = 0; q < static_cast<std::int32_t>(f.pts.size()); ++q) {
      const auto d = state.distances(q);
      all.insert(all.end(), d.begin(), d.end());
    }
    return all;
  };
  apps::KnnState seq_state(f.pts.size(), k);
  apps::KnnProgram seq_prog{&f.pts, &f.kdtree, &seq_state};
  const auto seq_roots = seq_prog.roots();
  const auto th = core::Thresholds::for_block_size(seq_prog.simd_width, 512, 64);
  (void)core::run_seq<core::SimdExec<apps::KnnProgram>>(seq_prog, seq_roots,
                                                        core::SeqPolicy::Restart, th);
  const auto expected = digest(seq_state);
  tbtest::for_each_hybrid_case([&](rt::ForkJoinPool& pool, const tbtest::HybridCase& c) {
    apps::KnnState state(f.pts.size(), k);
    apps::KnnProgram prog{&f.pts, &f.kdtree, &state};
    lockstep::hybrid_knn<W>(pool, prog, c.options());
    EXPECT_EQ(digest(state), expected);
  });
}

TEST(HybridEquivalence, KnnW8) { expect_knn_matches_seq<8>(); }
TEST(HybridEquivalence, KnnW4) { expect_knn_matches_seq<4>(); }

template <int W>
void expect_minmaxdist_matches_seq() {
  auto& f = fixtures();
  apps::MinmaxDistState seq_state(f.pts.size());
  apps::MinmaxDistProgram seq_prog{&f.pts, &f.kdtree, &seq_state};
  const auto seq_roots = seq_prog.roots();
  const auto th = core::Thresholds::for_block_size(seq_prog.simd_width, 512, 64);
  (void)core::run_seq<core::SimdExec<apps::MinmaxDistProgram>>(
      seq_prog, seq_roots, core::SeqPolicy::Restart, th);
  const auto expected = apps::minmaxdist_digest(seq_state);
  tbtest::for_each_hybrid_case([&](rt::ForkJoinPool& pool, const tbtest::HybridCase& c) {
    apps::MinmaxDistState state(f.pts.size());
    apps::MinmaxDistProgram prog{&f.pts, &f.kdtree, &state};
    lockstep::hybrid_minmaxdist<W>(pool, prog, c.options());
    EXPECT_EQ(apps::minmaxdist_digest(state), expected);
  });
}

TEST(HybridEquivalence, MinmaxDistW8) { expect_minmaxdist_matches_seq<8>(); }
TEST(HybridEquivalence, MinmaxDistW4) { expect_minmaxdist_matches_seq<4>(); }

template <int W>
void expect_barneshut_matches_seq() {
  auto& f = fixtures();
  const float theta = 0.5f;
  const std::size_t n = f.bodies.size();
  std::vector<float> sx(n, 0), sy(n, 0), sz(n, 0);
  apps::BarnesHutProgram seq_prog{&f.bodies, &f.octree, sx.data(), sy.data(), sz.data()};
  const auto seq_roots = seq_prog.roots(theta);
  const auto th = core::Thresholds::for_block_size(seq_prog.simd_width, 512, 64);
  const std::uint64_t expected = core::run_seq<core::SimdExec<apps::BarnesHutProgram>>(
      seq_prog, seq_roots, core::SeqPolicy::Restart, th);
  tbtest::for_each_hybrid_case([&](rt::ForkJoinPool& pool, const tbtest::HybridCase& c) {
    std::vector<float> hx(n, 0), hy(n, 0), hz(n, 0);
    apps::BarnesHutProgram prog{&f.bodies, &f.octree, hx.data(), hy.data(), hz.data()};
    EXPECT_EQ(lockstep::hybrid_barneshut<W>(pool, prog, theta, c.options()), expected);
    // Forces agree with the oracle to float-reassociation tolerance.
    double max_rel = 0;
    for (std::size_t b = 0; b < n; ++b) {
      const double mag = std::sqrt(static_cast<double>(sx[b]) * sx[b] +
                                   static_cast<double>(sy[b]) * sy[b] +
                                   static_cast<double>(sz[b]) * sz[b]);
      const double dx = static_cast<double>(hx[b]) - sx[b];
      const double dy = static_cast<double>(hy[b]) - sy[b];
      const double dz = static_cast<double>(hz[b]) - sz[b];
      const double diff = std::sqrt(dx * dx + dy * dy + dz * dz);
      if (mag > 1e-6) max_rel = std::max(max_rel, diff / mag);
    }
    EXPECT_LT(max_rel, 1e-3);
  });
}

TEST(HybridEquivalence, BarnesHutW8) { expect_barneshut_matches_seq<8>(); }
TEST(HybridEquivalence, BarnesHutW4) { expect_barneshut_matches_seq<4>(); }

// ---- per-worker stats ---------------------------------------------------------------

TEST(HybridDonation, ForcedDonationKeepsResultsExact) {
  // grain ≥ n suppresses range splitting entirely, so the whole query range
  // lands on one worker and frame donation is the only balancing channel:
  // the victim's deque stays empty, the first poll donates.  The count must
  // still match the sequential oracle and the donation counter must move.
  auto& f = fixtures();
  const apps::PointCorrProgram prog{&f.pts, &f.kdtree, 0.03f};
  const std::uint64_t expected = apps::pointcorr_sequential(prog);
  rt::ForkJoinPool pool(2);
  rt::HybridOptions opt;
  opt.t_reexp = 16;
  opt.donation = true;
  opt.grain = static_cast<std::int32_t>(f.pts.size());
  core::PerWorkerStats pw;
  EXPECT_EQ(lockstep::hybrid_pointcorr<8>(pool, prog, opt, &pw), expected);
  EXPECT_GE(pw.merged().donated_frames, 1u);
}

TEST(HybridDonation, DisabledDonationReportsNoDonatedFrames) {
  auto& f = fixtures();
  const apps::PointCorrProgram prog{&f.pts, &f.kdtree, 0.03f};
  rt::ForkJoinPool pool(4);
  rt::HybridOptions opt;
  opt.t_reexp = 16;  // donation defaults to off
  core::PerWorkerStats pw;
  (void)lockstep::hybrid_pointcorr<8>(pool, prog, opt, &pw);
  EXPECT_EQ(pw.merged().donated_frames, 0u);
}

TEST(HybridStats, SlotsMergeAndStayInRange) {
  auto& f = fixtures();
  const apps::PointCorrProgram prog{&f.pts, &f.kdtree, 0.03f};
  rt::ForkJoinPool pool(4);
  rt::HybridOptions opt;
  opt.t_reexp = 16;
  core::PerWorkerStats pw;
  const std::uint64_t count = lockstep::hybrid_pointcorr<8>(pool, prog, opt, &pw);
  EXPECT_GT(count, 0u);
  EXPECT_EQ(pw.slots(), 4u);
  const core::ExecStats merged = pw.merged();
  std::uint64_t sum_steps = 0, sum_tasks = 0;
  for (const auto& w : pw.workers) {
    sum_steps += w.steps_total;
    sum_tasks += w.tasks_executed;
    EXPECT_GE(w.simd_utilization(), 0.0);
    EXPECT_LE(w.simd_utilization(), 1.0);
  }
  EXPECT_EQ(merged.steps_total, sum_steps);
  EXPECT_EQ(merged.tasks_executed, sum_tasks);
  EXPECT_GE(pw.max_utilization(), pw.min_utilization());
}

TEST(HybridStats, StaticPartitionIsDeterministic) {
  auto& f = fixtures();
  const apps::PointCorrProgram prog{&f.pts, &f.kdtree, 0.03f};
  rt::ForkJoinPool pool(3);
  rt::HybridOptions opt;
  opt.t_reexp = 32;
  opt.static_partition = true;
  core::PerWorkerStats a, b;
  (void)lockstep::hybrid_pointcorr<8>(pool, prog, opt, &a);
  (void)lockstep::hybrid_pointcorr<8>(pool, prog, opt, &b);
  ASSERT_EQ(a.slots(), b.slots());
  for (std::size_t s = 0; s < a.slots(); ++s) {
    EXPECT_EQ(a.workers[s].steps_total, b.workers[s].steps_total) << "slot " << s;
    EXPECT_EQ(a.workers[s].steps_complete, b.workers[s].steps_complete) << "slot " << s;
    EXPECT_EQ(a.workers[s].tasks_executed, b.workers[s].tasks_executed) << "slot " << s;
  }
}

// The degenerate classic-lockstep threshold reproduces the classic kernel's
// divergence (strictly more incomplete steps than the compacting engine).
TEST(HybridStats, CompactionBeatsClassicLockstepUtilization) {
  auto& f = fixtures();
  const apps::PointCorrProgram prog{&f.pts, &f.kdtree, 0.01f};
  core::ExecStats blocked, classic;
  (void)lockstep::blocked_pointcorr<8>(prog, 0, &blocked);
  (void)lockstep::blocked_pointcorr<8>(prog, std::size_t{1} << 30, &classic);
  EXPECT_GT(blocked.simd_utilization(), classic.simd_utilization());
}

}  // namespace
