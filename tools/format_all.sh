#!/usr/bin/env sh
# Bulk clang-format pass over every tracked C++ file, with the same pinned
# version the enforcing CI job uses (.github/workflows/ci.yml).  Run from
# the repo root; commit the result as a dedicated formatting-only commit.
set -eu

FORMATTER=""
for candidate in clang-format-18 clang-format; do
  if command -v "$candidate" >/dev/null 2>&1; then
    FORMATTER="$candidate"
    break
  fi
done
if [ -z "$FORMATTER" ]; then
  echo "error: clang-format not found (CI pins clang-format-18)" >&2
  exit 1
fi

"$FORMATTER" --version
git ls-files '*.hpp' '*.cpp' | xargs "$FORMATTER" -i
git diff --stat
