// bench_diff — compare two taskbatch bench-result JSON documents.
//
// Loads a baseline and a candidate document (as written by any bench driver
// with --format=json), joins their records on the identity key
// (benchmark|variant|policy|layer|workers|scale|unit), and reports the
// per-record and geomean deltas, normalized so +X% always means "X% worse
// than baseline" regardless of whether the unit is lower-is-better
// (seconds, steps) or higher-is-better (utilization, ratio, speedup).
//
// Usage:
//   bench_diff [options] <baseline.json> <candidate.json>
//
// Options:
//   --threshold=PCT   per-record + geomean regression gate (default 10)
//   --units=a,b       only compare records with these units (default: all)
//   --require-all     also fail when a baseline record is missing from the
//                     candidate document
//   --quiet           summary only (no per-record table)
//
// Exit codes: 0 no regression; 1 regression (or missing records under
// --require-all, or any digest mismatch); 2 usage or parse error.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "bench/support/diff.hpp"
#include "bench/support/flags.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("cannot open " + path);
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) throw std::runtime_error("read error on " + path);
  return text;
}

tbench::Document load(const std::string& path) {
  return tbench::document_from_json(tbench::json::Value::parse(read_file(path)));
}

}  // namespace

int main(int argc, char** argv) {
  const tbench::Flags flags(argc, argv);
  if (flags.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff [--threshold=PCT] [--units=a,b] [--require-all] "
                 "[--quiet] <baseline.json> <candidate.json>\n");
    return 2;
  }
  const double threshold = flags.get_double("threshold", 10.0);
  const std::string units = flags.get("units");
  const bool require_all = flags.has("require-all");
  const bool quiet = flags.has("quiet");

  tbench::Document base, next;
  try {
    base = load(flags.positional()[0]);
    next = load(flags.positional()[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 2;
  }

  const tbench::DiffReport rep =
      tbench::diff_results(base.records, next.records, threshold, units);

  if (!quiet) {
    std::printf("%-64s %6s %12s %12s %9s\n", "record", "unit", "baseline", "candidate",
                "delta");
    for (const auto& e : rep.matched) {
      std::printf("%-64s %6s %12.6g %12.6g %+8.2f%%%s%s\n", e.base.key().c_str(),
                  e.base.unit.c_str(), e.base.seconds_best, e.next.seconds_best, e.delta_pct,
                  e.regressed ? "  REGRESSION" : "",
                  e.digest_mismatch ? "  DIGEST-MISMATCH" : "");
    }
    for (const auto& r : rep.only_base) {
      std::printf("%-64s %6s %12.6g %12s   missing in candidate\n", r.key().c_str(),
                  r.unit.c_str(), r.seconds_best, "-");
    }
    for (const auto& r : rep.only_next) {
      std::printf("%-64s %6s %12s %12.6g   new (no baseline)\n", r.key().c_str(),
                  r.unit.c_str(), "-", r.seconds_best);
    }
  }

  const bool geomean_regressed = rep.geomean_ratio > 1.0 + threshold / 100.0;
  std::printf("bench_diff: %s (%s) vs %s (%s): %zu matched, %zu missing, %zu new; "
              "geomean delta %+.2f%%; %d regression(s) > %.1f%%, %d digest mismatch(es)%s\n",
              flags.positional()[0].c_str(), base.driver.c_str(),
              flags.positional()[1].c_str(), next.driver.c_str(), rep.matched.size(),
              rep.only_base.size(), rep.only_next.size(), (rep.geomean_ratio - 1.0) * 100.0,
              rep.regressions, threshold,
              rep.digest_mismatches, geomean_regressed ? "; GEOMEAN REGRESSION" : "");

  if (rep.regressions > 0 || geomean_regressed || rep.digest_mismatches > 0) return 1;
  if (require_all && !rep.only_base.empty()) return 1;
  return 0;
}
