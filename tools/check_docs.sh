#!/usr/bin/env bash
# Docs health gate (the ci.yml "docs" job):
#   1. every relative markdown link in README.md and docs/*.md resolves;
#   2. every src/ subdirectory is mentioned in docs/ARCHITECTURE.md.
# Keeping this mechanical is what stops the architecture docs from rotting
# as subsystems are added.
set -euo pipefail
cd "$(dirname "$0")/.."
status=0

# 1. Relative link targets: ](path) and ](path#anchor); external schemes skip.
for doc in README.md docs/*.md; do
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue  # pure in-page anchor
    if [ ! -e "$(dirname "$doc")/$path" ]; then
      echo "BROKEN LINK in $doc: $target"
      status=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\((.*)\)$/\1/')
done

# 2. Every src/ subsystem must appear (as "name/") in the architecture doc.
for dir in src/*/; do
  name="$(basename "$dir")"
  if ! grep -q "${name}/" docs/ARCHITECTURE.md; then
    echo "docs/ARCHITECTURE.md does not mention src subsystem: ${name}"
    status=1
  fi
done

[ "$status" -eq 0 ] && echo "docs OK"
exit "$status"
